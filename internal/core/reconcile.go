package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/lease"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Anti-entropy reconciliation: the base periodically (and whenever a degraded
// node answers again) asks each node for its installed-extension inventory
// and repairs the drift a partition or crash left behind — re-pushing
// extensions the node is missing, revoking orphans that survived a missed
// revoke, and adopting the receiver's live leases instead of blindly
// re-pushing what is already there.

// RPC method names of the reconciliation surface.
const (
	// MethodInventory asks a receiver for its non-system extension inventory.
	MethodInventory = "midas.inventory"
	// MethodBaseStatus reports the base's per-node health and reconciliation
	// state (midasctl status).
	MethodBaseStatus = "base.status"
)

// Wire types for the reconciliation surface.
type (
	// InventoryItem describes one installed extension with its lease.
	InventoryItem struct {
		Name           string
		Version        int
		BaseAddr       string
		LeaseID        string
		DeadlineMillis int64
	}
	// InventoryResp is a receiver's installed-set inventory.
	InventoryResp struct {
		Node  string
		Items []InventoryItem
	}
	// ReconcileResult summarizes one reconciliation round against one node.
	ReconcileResult struct {
		AtMillis int64
		Err      string   // first error, "" when the round completed
		Repushed []string // extensions missing or outdated at the node
		Revoked  []string // orphans withdrawn (missed revokes)
		Adopted  []string // live receiver leases adopted without a re-push
		Promoted bool     // node returned from degraded
		InSync   bool     // nothing to repair
	}
	// NodeStatus is one node's row in a base status report.
	NodeStatus struct {
		ID            string
		Addr          string
		State         string // "adapted" | "degraded"
		Breaker       string // circuit state: "closed" | "open" | "half-open"
		Exts          []string
		LastReconcile ReconcileResult
	}
	// DriftCounters aggregate how much anti-entropy repair the base has done.
	DriftCounters struct {
		Rounds   uint64
		Repushes uint64
		Orphans  uint64
		Adopts   uint64
		Errors   uint64
	}
	// BaseStatusResp is the base.status report.
	BaseStatusResp struct {
		Name       string
		Addr       string
		Extensions []string // policy set, name@version
		Nodes      []NodeStatus
		Drift      DriftCounters
	}
)

// reconcileLoop drives periodic anti-entropy rounds until Close.
func (b *Base) reconcileLoop() {
	defer close(b.reconcileDone)
	for {
		select {
		case <-b.reconcileStop:
			return
		case <-b.cfg.Clock.After(b.cfg.ReconcileEvery):
			b.ReconcileNow(context.Background())
		}
	}
}

// ReconcileNow runs one anti-entropy round over every adapted and degraded
// node, returning the per-node results keyed by address. The round fans out
// one goroutine per node-table shard: nodes in different shards reconcile
// concurrently (they share no lock), while each shard's nodes are visited in
// address order.
func (b *Base) ReconcileNow(ctx context.Context) map[string]ReconcileResult {
	if b.closed.Load() {
		return nil
	}
	b.mu.Lock()
	rounds := b.m.reconRounds
	b.stats.Rounds++
	b.mu.Unlock()
	rounds.Inc()

	groups := b.nodes.perShardTargets()
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		out = make(map[string]ReconcileResult)
	)
	for _, group := range groups {
		if len(group) == 0 {
			continue
		}
		wg.Add(1)
		go func(addrs []string) {
			defer wg.Done()
			for _, addr := range addrs {
				res := b.reconcileNode(ctx, addr)
				mu.Lock()
				out[addr] = res
				mu.Unlock()
			}
		}(group)
	}
	wg.Wait()
	return out
}

// reconcileNode diffs one node's inventory against the policy set and repairs
// the drift. For a degraded node the inventory call doubles as the circuit's
// half-open probe: while the circuit is open it fast-fails locally (no re-push
// storm), and the probe that finally lands promotes the node back.
func (b *Base) reconcileNode(ctx context.Context, addr string) ReconcileResult {
	res := ReconcileResult{AtMillis: b.cfg.Clock.Now().UnixMilli()}
	tr := b.traceRef()
	rctx, sp := tr.StartSpan(ctx, "base.reconcile")
	sp.Tag("node", addr)

	ictx, cancel := context.WithTimeout(rctx, b.cfg.CallTimeout)
	inv, err := transport.Invoke[EmptyResp, InventoryResp](ictx, b.caller, addr, MethodInventory, EmptyResp{})
	cancel()
	if err != nil {
		res.Err = err.Error()
		sp.End(err)
		b.noteReconcile(addr, res)
		return res
	}

	s := b.nodes.shard(addr)
	s.mu.Lock()
	n, adapted := s.adapted[addr]
	id, wasDegraded := s.degraded[addr]
	s.mu.Unlock()
	b.mu.Lock()
	desired := append([]Extension(nil), b.extensions...)
	b.mu.Unlock()
	if b.closed.Load() {
		sp.End(nil)
		return res
	}
	if !adapted {
		if !wasDegraded {
			// Released concurrently: nothing to reconcile.
			sp.End(nil)
			return res
		}
		// The inventory answered: the node is back from its partition.
		nodeID := id
		if inv.Node != "" {
			nodeID = inv.Node
		}
		n = newAdaptedNode(nodeID, addr)
		s.mu.Lock()
		if cur, dup := s.adapted[addr]; dup {
			n = cur
		} else {
			delete(s.degraded, addr)
			s.adapted[addr] = n
		}
		s.mu.Unlock()
		res.Promoted = true
		b.log("reconcile", nodeID, "", "node reachable again; promoted from degraded")
	}

	// Index what the node holds from this base.
	mine := make(map[string]InventoryItem, len(inv.Items))
	for _, it := range inv.Items {
		if it.BaseAddr == b.cfg.Addr {
			mine[it.Name] = it
		}
	}

	now := b.cfg.Clock.Now()
	var missing []Extension
	for _, ext := range desired {
		it, have := mine[ext.Name]
		delete(mine, ext.Name)
		switch {
		case !have || it.Version < ext.Version:
			// Missing (wiped, expired during the partition) or outdated:
			// collected for one batched re-push below.
			missing = append(missing, ext)
		case it.Version == ext.Version:
			s.mu.Lock()
			_, hasGrant := n.grants[ext.Name]
			s.mu.Unlock()
			if !hasGrant {
				// The node still holds a live lease (e.g. the base crashed or
				// the node just came back): adopt the receiver's lease and
				// deadline instead of re-pushing.
				deadline := time.UnixMilli(it.DeadlineMillis)
				g := grantInfo{
					version:  it.Version,
					leaseID:  lease.ID(it.LeaseID),
					dur:      b.cfg.LeaseDur,
					deadline: deadline,
				}
				if b.trackGrant(n, ext.Name, g, deadline.Sub(now), trace.SpanContext{}) {
					res.Adopted = append(res.Adopted, ext.Name)
				}
			} else if it.DeadlineMillis > 0 {
				// A renewal is already scheduled: the receiver's deadline is
				// the truth — adopt it into the checkpoint.
				s.mu.Lock()
				if g, ok := n.grants[ext.Name]; ok && g.deadline.UnixMilli() != it.DeadlineMillis {
					g.deadline = time.UnixMilli(it.DeadlineMillis)
					n.grants[ext.Name] = g
					b.journalNode(n)
				}
				s.mu.Unlock()
			}
			// A newer version at the node than in the policy set is left
			// alone: reconciliation never downgrades.
		}
	}

	// Whatever remains came from this base but is no longer desired: an
	// orphan of a revoke that was lost during the partition.
	orphans := make([]string, 0, len(mine))
	for name := range mine {
		orphans = append(orphans, name)
	}
	sort.Strings(orphans)
	for _, name := range orphans {
		b.stopTracking(addr, name)
	}

	// The whole repair — missing re-pushes and orphan revokes — rides one
	// batched apply when the peer supports it.
	installErrs, revokeErrs := b.applyToNode(rctx, n, missing, orphans)
	for _, ext := range missing {
		if err := installErrs[ext.Name]; err != nil {
			if res.Err == "" {
				res.Err = err.Error()
			}
			b.log("push", n.id, ext.Name, "failed: "+err.Error())
			continue
		}
		res.Repushed = append(res.Repushed, ext.Name)
	}
	for _, name := range orphans {
		if err := revokeErrs[name]; err != nil {
			if res.Err == "" {
				res.Err = err.Error()
			}
			b.log("revoke", n.id, name, "failed: "+err.Error())
			continue
		}
		res.Revoked = append(res.Revoked, name)
		b.log("revoke", n.id, name, "orphan cleaned by reconciliation")
	}

	res.InSync = res.Err == "" && len(res.Repushed) == 0 && len(res.Revoked) == 0 &&
		len(res.Adopted) == 0 && !res.Promoted
	sp.Annotatef("repushed=%d revoked=%d adopted=%d promoted=%v",
		len(res.Repushed), len(res.Revoked), len(res.Adopted), res.Promoted)
	sp.End(nil)
	b.noteReconcile(addr, res)
	return res
}

// noteReconcile records a round's outcome for status reporting and bumps the
// drift counters.
func (b *Base) noteReconcile(addr string, res ReconcileResult) {
	b.mu.Lock()
	b.lastReconcile[addr] = res
	b.stats.Repushes += uint64(len(res.Repushed))
	b.stats.Orphans += uint64(len(res.Revoked))
	b.stats.Adopts += uint64(len(res.Adopted))
	if res.Err != "" {
		b.stats.Errors++
	}
	m := b.m
	b.mu.Unlock()
	m.reconRepushes.Add(uint64(len(res.Repushed)))
	m.reconOrphans.Add(uint64(len(res.Revoked)))
	m.reconAdopts.Add(uint64(len(res.Adopted)))
	if res.Err != "" {
		m.reconErrors.Inc()
	}
}

// Status reports the base's per-node state — adapted or degraded, circuit
// state, held extensions, last reconcile outcome — plus the aggregate drift
// counters. Served over the fabric as base.status for midasctl.
func (b *Base) Status() BaseStatusResp {
	b.mu.Lock()
	resp := BaseStatusResp{Name: b.cfg.Name, Addr: b.cfg.Addr, Drift: b.stats}
	for _, e := range b.extensions {
		resp.Extensions = append(resp.Extensions, fmt.Sprintf("%s@v%d", e.Name, e.Version))
	}
	last := make(map[string]ReconcileResult, len(b.lastReconcile))
	for addr, r := range b.lastReconcile {
		last[addr] = r
	}
	b.mu.Unlock()
	for i := range b.nodes.shards {
		sh := &b.nodes.shards[i]
		sh.mu.Lock()
		for addr, n := range sh.adapted {
			exts := make([]string, 0, len(n.grants))
			for name := range n.grants {
				exts = append(exts, name)
			}
			sort.Strings(exts)
			resp.Nodes = append(resp.Nodes, NodeStatus{
				ID:            n.id,
				Addr:          addr,
				State:         "adapted",
				Exts:          exts,
				LastReconcile: last[addr],
			})
		}
		for addr, id := range sh.degraded {
			resp.Nodes = append(resp.Nodes, NodeStatus{
				ID:            id,
				Addr:          addr,
				State:         "degraded",
				LastReconcile: last[addr],
			})
		}
		sh.mu.Unlock()
	}
	for i := range resp.Nodes {
		resp.Nodes[i].Breaker = b.cfg.Breaker.State(resp.Nodes[i].Addr).String()
	}
	sort.Slice(resp.Nodes, func(i, j int) bool { return resp.Nodes[i].Addr < resp.Nodes[j].Addr })
	return resp
}
