package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/lvm"
	"repro/internal/lvm/analysis"
	"repro/internal/sandbox"
)

// builtinCaps maps builtin advice names to the capabilities their factories
// exercise. Builtins are native Go compiled into the node, so nothing can be
// inferred from bytecode; their authors declare the set here (ext.RegisterAll
// does it for the stock builtins) and admission unions it with what the
// analyzer infers from mobile code.
var (
	builtinCapsMu sync.RWMutex
	builtinCaps   = make(map[string][]sandbox.Capability)
)

// RegisterBuiltinCaps declares the capability set a builtin advice factory
// needs at run time, for admission-time checking.
func RegisterBuiltinCaps(name string, caps ...sandbox.Capability) {
	builtinCapsMu.Lock()
	defer builtinCapsMu.Unlock()
	builtinCaps[name] = append([]sandbox.Capability(nil), caps...)
}

// BuiltinCaps returns the declared capability set of a builtin, and whether
// the builtin has one registered.
func BuiltinCaps(name string) ([]sandbox.Capability, bool) {
	builtinCapsMu.RLock()
	defer builtinCapsMu.RUnlock()
	caps, ok := builtinCaps[name]
	return append([]sandbox.Capability(nil), caps...), ok
}

// AnalysisReport is the stored (and wire) form of one extension's admission
// analysis: the exact capability set its advice can exercise, the static fuel
// verdict of its mobile code, and non-fatal findings. Bases keep the report
// of every admitted extension and serve it over base.analyze.
type AnalysisReport struct {
	Ext     string
	Version int
	// Caps is the full inferred capability set, always-granted namespaces
	// (ctx, log) included, sorted.
	Caps []string
	// HostCalls lists every host function reachable from mobile advice.
	HostCalls []string
	// Flows lists the inferred information-flow rules ("source->sink",
	// deduplicated, sorted) over all mobile advice.
	Flows []string
	// FuelBounded / FuelSteps summarise the cost analysis over all mobile
	// advice: bounded only if every advice is, Steps is the largest bound.
	FuelBounded bool
	FuelSteps   int
	Warnings    []string
}

// alwaysGranted are the namespaces sandbox.NewHost grants unconditionally;
// admission must not demand they be declared or admitted by policy.
var alwaysGranted = map[sandbox.Capability]bool{
	sandbox.CapCtx: true,
	sandbox.CapLog: true,
}

// Demand returns the capabilities the extension actually needs granted: the
// inferred set minus the always-granted namespaces, sorted.
func (r *AnalysisReport) Demand() []sandbox.Capability {
	var out []sandbox.Capability
	for _, c := range r.Caps {
		if cap := sandbox.Capability(c); !alwaysGranted[cap] {
			out = append(out, cap)
		}
	}
	return out
}

// AnalyzeExtension runs the static admission analysis over every advice of
// ext: mobile code is assembled and fed through the bytecode analyzer
// (typed verification, capability inference, cost bounds — a type-confused or
// fall-off method rejects the extension here), builtin advices contribute
// their registered capability sets. The returned report's Caps is the union,
// which is exactly what the extension can ever demand from a node's sandbox.
func AnalyzeExtension(ext Extension) (*AnalysisReport, error) {
	rep := &AnalysisReport{Ext: ext.Name, Version: ext.Version, FuelBounded: true}
	capSet := make(map[sandbox.Capability]bool)
	callSet := make(map[string]bool)
	flowSet := make(map[string]bool)
	for i := range ext.Advices {
		spec := &ext.Advices[i]
		if spec.Builtin != "" {
			caps, known := BuiltinCaps(spec.Builtin)
			if !known {
				// An unregistered builtin resolves only at the receiving node;
				// fall back to trusting the declared set, but say so.
				rep.Warnings = append(rep.Warnings,
					fmt.Sprintf("advice %q: builtin %q has no registered capability set; trusting declared caps", spec.Name, spec.Builtin))
				for _, c := range ext.Capabilities() {
					capSet[c] = true
				}
				continue
			}
			for _, c := range caps {
				capSet[c] = true
			}
			continue
		}
		mrep, warns, err := analyzeAdviceCode(spec.Code)
		if err != nil {
			return nil, fmt.Errorf("core: extension %q advice %q: %w", ext.Name, spec.Name, err)
		}
		for _, w := range warns {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("advice %q: %s", spec.Name, w))
		}
		for _, c := range mrep.Caps {
			capSet[c] = true
		}
		for _, fn := range mrep.HostCalls {
			callSet[fn] = true
		}
		for _, rule := range analysis.FlowRules(mrep.Flows) {
			flowSet[rule] = true
		}
		if !mrep.Fuel.Bounded {
			rep.FuelBounded = false
		} else if mrep.Fuel.Steps > rep.FuelSteps {
			rep.FuelSteps = mrep.Fuel.Steps
		}
	}
	for c := range capSet {
		rep.Caps = append(rep.Caps, string(c))
	}
	sort.Strings(rep.Caps)
	for fn := range callSet {
		rep.HostCalls = append(rep.HostCalls, fn)
	}
	sort.Strings(rep.HostCalls)
	for rule := range flowSet {
		rep.Flows = append(rep.Flows, rule)
	}
	sort.Strings(rep.Flows)
	if !rep.FuelBounded {
		rep.FuelSteps = 0
	}
	return rep, nil
}

// analyzeAdviceCode assembles one mobile advice and analyses its entry
// method, enforcing the same structural shape CompileAdvice requires.
func analyzeAdviceCode(source string) (*analysis.MethodReport, []string, error) {
	prog, err := lvm.Assemble(source)
	if err != nil {
		return nil, nil, err
	}
	cls := prog.Class(AdviceClass)
	if cls == nil {
		return nil, nil, fmt.Errorf("advice code must define class %s", AdviceClass)
	}
	meth := cls.Methods[AdviceMethod]
	if meth == nil {
		return nil, nil, fmt.Errorf("advice code must define %s.%s()", AdviceClass, AdviceMethod)
	}
	if meth.Arity() != 0 {
		return nil, nil, fmt.Errorf("%s.%s must take no parameters", AdviceClass, AdviceMethod)
	}
	full, err := analysis.AnalyzeProgram(prog)
	if err != nil {
		return nil, nil, err
	}
	mrep := full.Method(AdviceClass, AdviceMethod)
	return mrep, full.Warnings, nil
}

// FlowError reports an information flow refused at admission: either the
// extension's bytecode exercises a flow it does not declare, or a declared
// flow falls outside the base operator's allowlist. It is a distinct type so
// callers (base metrics, tests) can discriminate flow refusals from
// capability refusals with errors.As.
type FlowError struct {
	Ext  string
	Rule string // the refused "source->sink" rule
	// Undeclared is true when the bytecode exercises a flow absent from the
	// descriptor; false when a declared flow is refused by the allowlist.
	Undeclared bool
}

// Error implements error.
func (e *FlowError) Error() string {
	if e.Undeclared {
		return fmt.Sprintf("core: extension %q exercises undeclared information flow %s", e.Ext, e.Rule)
	}
	return fmt.Sprintf("core: extension %q flow %s refused by admission flow policy", e.Ext, e.Rule)
}

// CheckFlows enforces the information-flow half of admission: every flow the
// analysis inferred must be declared in ext.Flows, and — when allow is
// non-nil — every inferred flow must also appear in the allowlist. An empty
// non-nil allowlist therefore refuses every extension with any inferred
// flow. Declared-but-unexercised flows are fine: declaring generously costs
// nothing until bytecode actually moves data.
func CheckFlows(ext Extension, rep *AnalysisReport, allow []string) error {
	declared := make(map[string]bool, len(ext.Flows))
	for _, f := range ext.Flows {
		declared[f] = true
	}
	var allowed map[string]bool
	if allow != nil {
		allowed = make(map[string]bool, len(allow))
		for _, f := range allow {
			allowed[f] = true
		}
	}
	for _, rule := range rep.Flows {
		if !declared[rule] {
			return &FlowError{Ext: ext.Name, Rule: rule, Undeclared: true}
		}
		if allowed != nil && !allowed[rule] {
			return &FlowError{Ext: ext.Name, Rule: rule}
		}
	}
	return nil
}

// CheckAdmission decides whether an extension may be admitted: every
// capability its advice can exercise (beyond the always-granted ones) must be
// declared in ext.Caps — receivers grant permissions from the declaration, so
// an under-declared extension would abort inside a node's sandbox — every
// inferred information flow must be declared in ext.Flows (and pass the
// flowAllow allowlist when one is set, nil meaning unrestricted), and, when
// a policy is given, the policy must grant the whole demand. The error names
// the exact missing capabilities via sandbox.Perms.Diff; flow refusals are
// *FlowError.
func CheckAdmission(ext Extension, rep *AnalysisReport, policy sandbox.Policy, flowAllow []string, signer string) error {
	demand := rep.Demand()
	declared := sandbox.NewPerms(ext.Capabilities()...)
	if missing := declared.Diff(demand); len(missing) > 0 {
		return fmt.Errorf("core: extension %q uses undeclared capabilities %v (declares %s)",
			ext.Name, missing, declared)
	}
	if err := CheckFlows(ext, rep, flowAllow); err != nil {
		return err
	}
	if policy == nil {
		return nil
	}
	perms, err := policy.Grant(signer, demand)
	if err != nil {
		return fmt.Errorf("core: extension %q refused by admission policy: %w", ext.Name, err)
	}
	if missing := perms.Diff(demand); len(missing) > 0 {
		return fmt.Errorf("core: extension %q needs capabilities %v beyond admission grant %s",
			ext.Name, missing, perms)
	}
	return nil
}

// Wire surface for stored analysis reports.

// MethodBaseAnalyze serves the stored admission report of an extension.
const MethodBaseAnalyze = "base.analyze"

type (
	// AnalyzeReq names the extension whose report is wanted.
	AnalyzeReq struct {
		Ext string
	}
	// AnalyzeResp returns the stored report.
	AnalyzeResp struct {
		Report AnalysisReport
	}
)
