package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/aop"
	"repro/internal/lvm"
	"repro/internal/lvm/analysis"
	"repro/internal/metrics"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/transport"
)

// codeExt wraps one mobile advice source as a complete extension.
func codeExt(name string, caps []string, source string) Extension {
	return Extension{
		ID:      "ext/" + name,
		Name:    name,
		Version: 1,
		Advices: []AdviceSpec{{
			Name:    "a",
			Kind:    KindCallBefore,
			Pattern: "Motor.*(..)",
			Code:    source,
		}},
		Caps: caps,
	}
}

const auditSource = `
class Ext
  method void advice()
    hostcall clock.now 0
    hostcall store.put 1
    pop
  end
end`

func TestAnalyzeExtensionInfersCodeCaps(t *testing.T) {
	rep, err := AnalyzeExtension(codeExt("audit", []string{"clock", "store"}, auditSource))
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"clock", "store"}; !reflect.DeepEqual(rep.Caps, want) {
		t.Errorf("Caps = %v, want %v", rep.Caps, want)
	}
	if want := []string{"clock.now", "store.put"}; !reflect.DeepEqual(rep.HostCalls, want) {
		t.Errorf("HostCalls = %v, want %v", rep.HostCalls, want)
	}
	if !rep.FuelBounded || rep.FuelSteps == 0 {
		t.Errorf("fuel = bounded %v steps %d, want a bounded nonzero cost", rep.FuelBounded, rep.FuelSteps)
	}
	if want := []sandbox.Capability{"clock", "store"}; !reflect.DeepEqual(rep.Demand(), want) {
		t.Errorf("Demand = %v, want %v", rep.Demand(), want)
	}
}

func TestAnalyzeExtensionBuiltinRegistry(t *testing.T) {
	RegisterBuiltinCaps("admtest-persist", sandbox.CapStore)
	ext := Extension{
		ID: "ext/b", Name: "b", Version: 1,
		Advices: []AdviceSpec{{Name: "a", Kind: KindCallBefore, Pattern: "*.*(..)", Builtin: "admtest-persist"}},
	}
	rep, err := AnalyzeExtension(ext)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"store"}; !reflect.DeepEqual(rep.Caps, want) {
		t.Errorf("Caps = %v, want %v", rep.Caps, want)
	}
	if len(rep.Warnings) != 0 {
		t.Errorf("unexpected warnings %v", rep.Warnings)
	}
}

func TestAnalyzeExtensionUnknownBuiltinFallsBack(t *testing.T) {
	ext := Extension{
		ID: "ext/u", Name: "u", Version: 1,
		Advices: []AdviceSpec{{Name: "a", Kind: KindCallBefore, Pattern: "*.*(..)", Builtin: "admtest-nosuch"}},
		Caps:    []string{"net"},
	}
	rep, err := AnalyzeExtension(ext)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"net"}; !reflect.DeepEqual(rep.Caps, want) {
		t.Errorf("Caps = %v, want declared fallback %v", rep.Caps, want)
	}
	if len(rep.Warnings) != 1 || !strings.Contains(rep.Warnings[0], "no registered capability set") {
		t.Errorf("warnings = %v, want an unregistered-builtin warning", rep.Warnings)
	}
}

func TestAnalyzeExtensionRejectsBrokenCode(t *testing.T) {
	// Type confusion: add on a string operand.
	_, err := AnalyzeExtension(codeExt("broken", nil, `
class Ext
  method void advice()
    push "x"
    push 1
    add
    pop
  end
end`))
	if err == nil || !strings.Contains(err.Error(), "add") {
		t.Fatalf("want typed-verification rejection, got %v", err)
	}
}

func TestCheckAdmission(t *testing.T) {
	ext := codeExt("audit", []string{"clock", "store"}, auditSource)
	rep, err := AnalyzeExtension(ext)
	if err != nil {
		t.Fatal(err)
	}

	// Demand covered by declaration and policy: admitted.
	if err := CheckAdmission(ext, rep, sandbox.Allowlist(sandbox.CapClock, sandbox.CapStore), nil, "hall-1"); err != nil {
		t.Errorf("covered extension rejected: %v", err)
	}
	// Nil policy still requires declaration, nothing more.
	if err := CheckAdmission(ext, rep, nil, nil, "hall-1"); err != nil {
		t.Errorf("nil-policy admission failed: %v", err)
	}

	// Undeclared capability: the inferred demand exceeds ext.Caps.
	under := codeExt("audit", []string{"clock"}, auditSource)
	rep2, err := AnalyzeExtension(under)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAdmission(under, rep2, nil, nil, "hall-1"); err == nil ||
		!strings.Contains(err.Error(), "undeclared capabilities [store]") {
		t.Errorf("want undeclared-capability rejection naming store, got %v", err)
	}

	// Policy refuses part of the demand.
	err = CheckAdmission(ext, rep, sandbox.Allowlist(sandbox.CapStore), nil, "hall-1")
	if err == nil || !strings.Contains(err.Error(), "clock") {
		t.Errorf("want policy rejection naming clock, got %v", err)
	}
}

func TestCheckAdmissionExemptsAlwaysGranted(t *testing.T) {
	// ctx.* and log.* are granted by every sandbox host; an extension using
	// only those needs no declared caps and passes any policy.
	ext := codeExt("quiet", nil, `
class Ext
  method void advice()
    hostcall ctx.method 0
    hostcall log.info 1
    pop
  end
end`)
	rep, err := AnalyzeExtension(ext)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Demand()) != 0 {
		t.Fatalf("Demand = %v, want empty", rep.Demand())
	}
	if err := CheckAdmission(ext, rep, sandbox.Allowlist(), nil, "hall-1"); err != nil {
		t.Errorf("ctx/log-only extension rejected: %v", err)
	}
}

func TestBaseRejectsOverPrivilegedExtension(t *testing.T) {
	signer, err := sign.NewSigner("hall-1")
	if err != nil {
		t.Fatal(err)
	}
	fabric := transport.NewInProc()
	base, err := NewBase(BaseConfig{
		Name:      "base-1",
		Addr:      "base-1",
		Caller:    fabric.Node("base-1"),
		Signer:    signer,
		Admission: sandbox.Allowlist(sandbox.CapStore, sandbox.CapClock),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	reg := metrics.New()
	base.Instrument(reg)

	// Declares net honestly, but the admission policy only grants store+clock.
	leak := codeExt("leak", []string{"net"}, `
class Ext
  method void advice()
    hostcall net.post 0
    pop
  end
end`)
	if err := base.AddExtension(leak); err == nil || !strings.Contains(err.Error(), "admission") {
		t.Fatalf("want admission rejection, got %v", err)
	}
	if got := reg.Counter("base.admission_rejected").Value(); got != 1 {
		t.Errorf("base.admission_rejected = %d, want 1", got)
	}
	if _, ok := base.AnalysisFor("leak"); ok {
		t.Error("rejected extension left a stored analysis report")
	}
	if len(base.Extensions()) != 0 {
		t.Error("rejected extension joined the policy set")
	}

	// A compliant extension is admitted and its report stored and served.
	ok := codeExt("audit", []string{"clock", "store"}, auditSource)
	if err := base.AddExtension(ok); err != nil {
		t.Fatal(err)
	}
	rep, have := base.AnalysisFor("audit")
	if !have || !reflect.DeepEqual(rep.Caps, []string{"clock", "store"}) {
		t.Errorf("stored report = %+v (have %v)", rep, have)
	}

	// The stored report is retrievable over the wire (midasctl analyze path).
	mux := transport.NewMux()
	base.ServeOn(mux)
	stop, err := fabric.Serve("base-1", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := transport.Invoke[AnalyzeReq, AnalyzeResp](ctx, fabric.Node("ctl"), "base-1",
		MethodBaseAnalyze, AnalyzeReq{Ext: "audit"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Report.Caps, []string{"clock", "store"}) {
		t.Errorf("served report caps = %v", resp.Report.Caps)
	}
	if _, err := transport.Invoke[AnalyzeReq, AnalyzeResp](ctx, fabric.Node("ctl"), "base-1",
		MethodBaseAnalyze, AnalyzeReq{Ext: "leak"}); err == nil {
		t.Error("base.analyze served a report for a rejected extension")
	}
}

func TestBaseRejectsUndeclaredCapabilities(t *testing.T) {
	signer, err := sign.NewSigner("hall-1")
	if err != nil {
		t.Fatal(err)
	}
	fabric := transport.NewInProc()
	base, err := NewBase(BaseConfig{
		Name: "base-1", Addr: "base-1", Caller: fabric.Node("base-1"), Signer: signer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	// No Admission policy, but the net usage is undeclared: still rejected.
	sneaky := codeExt("sneaky", nil, `
class Ext
  method void advice()
    hostcall net.post 0
    pop
  end
end`)
	if err := base.AddExtension(sneaky); err == nil ||
		!strings.Contains(err.Error(), "undeclared capabilities [net]") {
		t.Fatalf("want undeclared-capability rejection, got %v", err)
	}
}

func TestAdviceMaxSteps(t *testing.T) {
	if got := adviceMaxSteps(analysis.Fuel{Bounded: true, Steps: 12}); got != 20 {
		t.Errorf("bounded budget = %d, want 20", got)
	}
	if got := adviceMaxSteps(analysis.Unbounded()); got != defaultAdviceMaxSteps {
		t.Errorf("unbounded budget = %d, want the default cap", got)
	}
}

func TestCompileAdviceBudgetEnforced(t *testing.T) {
	// A bounded advice runs within its statically-derived budget; the budget
	// is tight enough that the analysis, not the legacy cap, set it.
	body, err := CompileAdvice(auditSource, hostEcho{})
	if err != nil {
		t.Fatal(err)
	}
	cb := body.(*codeBody)
	if cb.interp.MaxSteps >= defaultAdviceMaxSteps {
		t.Errorf("MaxSteps = %d, want a tight static bound", cb.interp.MaxSteps)
	}
	if err := cb.Exec(nil); err != nil {
		t.Errorf("advice exceeded its statically-derived budget: %v", err)
	}
}

// hostEcho answers every host call with nil.
type hostEcho struct{}

func (hostEcho) HostCall(string, []lvm.Value) (lvm.Value, error) { return lvm.Nil(), nil }

const exfilBenchSource = `
class Ext
  method void advice()
    hostcall ctx.class 0
    push "."
    concat
    hostcall ctx.method 0
    concat
    hostcall net.post 1
    pop
  end
end`

// BenchmarkAdmissionCheck measures the one-time cost of catching an
// over-privileged extension at the base: full static analysis plus the policy
// check. Paid once per AddExtension, never per call.
func BenchmarkAdmissionCheck(b *testing.B) {
	ext := codeExt("leak", []string{"net"}, exfilBenchSource)
	policy := sandbox.Allowlist(sandbox.CapStore)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := AnalyzeExtension(ext)
		if err != nil {
			b.Fatal(err)
		}
		if err := CheckAdmission(ext, rep, policy, nil, "hall-1"); err == nil {
			b.Fatal("over-privileged extension admitted")
		}
	}
}

// BenchmarkRuntimeViolation measures the alternative: the same advice woven
// anyway and aborted by the sandbox on every single dispatch.
func BenchmarkRuntimeViolation(b *testing.B) {
	host := sandbox.NewHost(lvm.HostMap{}, sandbox.NewPerms())
	body, err := CompileAdvice(exfilBenchSource, host)
	if err != nil {
		b.Fatal(err)
	}
	ctx := &aop.Context{Sig: aop.Signature{Class: "Motor", Method: "rotate"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := body.Exec(ctx); err == nil {
			b.Fatal("gated call slipped through")
		}
	}
}

const launderSource = `
class Ext
  field stash
  method void advice()
    load self
    call fetch 0
    pop
    load self
    getfield stash
    hostcall net.post 1
    pop
    retv
  end
  method int fetch()
    load self
    push "secret"
    hostcall store.get 1
    setfield stash
    push 0
    ret
  end
end`

func TestAnalyzeExtensionInfersFlows(t *testing.T) {
	ext := codeExt("launder", []string{"net", "store"}, launderSource)
	rep, err := AnalyzeExtension(ext)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"store->net"}; !reflect.DeepEqual(rep.Flows, want) {
		t.Errorf("Flows = %v, want %v", rep.Flows, want)
	}
}

func TestCheckAdmissionRefusesUndeclaredFlow(t *testing.T) {
	// Declares both caps honestly — the old cap-set check passes — but not
	// the store->net flow its bytecode exercises.
	ext := codeExt("launder", []string{"net", "store"}, launderSource)
	rep, err := AnalyzeExtension(ext)
	if err != nil {
		t.Fatal(err)
	}
	err = CheckAdmission(ext, rep, nil, nil, "hall-1")
	var fe *FlowError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FlowError, got %v", err)
	}
	if fe.Rule != "store->net" || !fe.Undeclared {
		t.Errorf("FlowError = %+v", fe)
	}

	// Declaring the flow admits it (nil allowlist).
	ext.Flows = []string{"store->net"}
	if err := CheckAdmission(ext, rep, nil, nil, "hall-1"); err != nil {
		t.Errorf("declared flow rejected: %v", err)
	}

	// A non-nil allowlist without the rule refuses even a declared flow.
	err = CheckAdmission(ext, rep, nil, []string{"device->store"}, "hall-1")
	if !errors.As(err, &fe) || fe.Undeclared {
		t.Errorf("want allowlist FlowError, got %v", err)
	}
	// And one including it admits.
	if err := CheckAdmission(ext, rep, nil, []string{"store->net"}, "hall-1"); err != nil {
		t.Errorf("allowlisted flow rejected: %v", err)
	}
}

func TestValidateFlowRules(t *testing.T) {
	ext := codeExt("f", []string{"store"}, auditSource)
	ext.Flows = []string{"store->net"}
	if err := ext.Validate(); err != nil {
		t.Errorf("well-formed flow rule rejected: %v", err)
	}
	for _, bad := range []string{"", "store", "->net", "store->", "a->b->c"} {
		ext.Flows = []string{bad}
		if err := ext.Validate(); err == nil {
			t.Errorf("malformed flow rule %q accepted", bad)
		}
	}
}

const dispatchBenchSource = `
class Ext
  method void advice()
    push "k"
    hostcall store.get 1
    pop
  end
end`

// BenchmarkHostDispatchChecked measures one advice execution whose store.get
// goes through the sandbox capability gate: permission lookup, audit mutex,
// call counter, then the inner host.
func BenchmarkHostDispatchChecked(b *testing.B) {
	host := sandbox.NewHost(hostEcho{}, sandbox.NewPerms(sandbox.CapStore))
	body, err := CompileAdvice(dispatchBenchSource, host)
	if err != nil {
		b.Fatal(err)
	}
	ctx := &aop.Context{Sig: aop.Signature{Class: "Motor", Method: "rotate"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := body.Exec(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostDispatchProven measures the same advice after admission
// analysis proved the capability check dead: the interpreter dispatches
// store.get straight to the inner host, skipping the gate entirely.
func BenchmarkHostDispatchProven(b *testing.B) {
	host := sandbox.NewHost(hostEcho{}, sandbox.NewPerms(sandbox.CapStore))
	host.Prove("store.get")
	body, err := CompileAdvice(dispatchBenchSource, host)
	if err != nil {
		b.Fatal(err)
	}
	ctx := &aop.Context{Sig: aop.Signature{Class: "Motor", Method: "rotate"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := body.Exec(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
