package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/sign"
	"repro/internal/transport"
)

// idleCaller never reaches a network: renewers registered during a recovery
// benchmark sit on the manual clock and never fire.
type idleCaller struct{}

func (idleCaller) Call(context.Context, string, string, any, any) error { return nil }

// BenchmarkReceiverRecover measures node restart cost against journal size:
// replaying N journalled extensions (signature re-verification, validation,
// weaving, lease restoration) into a fresh receiver.
func BenchmarkReceiverRecover(b *testing.B) {
	for _, n := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("exts=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			clk := clock.NewManual(time.Unix(1000, 0))
			signer, err := sign.NewSigner("hall-1")
			if err != nil {
				b.Fatal(err)
			}
			seed, jr := newJournaledReceiver(b, dir, clk, signer)
			for i := 0; i < n; i++ {
				if _, err := seed.Install(
					mustSign(b, signer, recoveryExt(fmt.Sprintf("ext-%03d", i), 1)),
					"base-1", time.Hour); err != nil {
					b.Fatal(err)
				}
			}
			if err := jr.Close(); err != nil {
				b.Fatal(err)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				r, j := newJournaledReceiver(b, dir, clk, signer)
				b.StartTimer()
				restored, err := r.Recover()
				b.StopTimer()
				if err != nil || restored != n {
					b.Fatalf("restored %d/%d: %v", restored, n, err)
				}
				j.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkBaseRecover measures base restart cost against journal size:
// replaying N node records (4 grants each) and resuming their renewers.
func BenchmarkBaseRecover(b *testing.B) {
	for _, n := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			clk := clock.NewManual(time.Unix(1000, 0))
			signer, err := sign.NewSigner("hall-1")
			if err != nil {
				b.Fatal(err)
			}
			j, err := OpenBaseJournal(dir)
			if err != nil {
				b.Fatal(err)
			}
			deadline := clk.Now().Add(time.Hour).UnixMilli()
			for i := 0; i < n; i++ {
				rec := NodeRecord{ID: fmt.Sprintf("node-%03d", i), Exts: map[string]GrantRecord{}}
				for k := 0; k < 4; k++ {
					rec.Exts[fmt.Sprintf("ext-%d", k)] = GrantRecord{
						Version: 1, LeaseID: fmt.Sprintf("L%d-%d", i, k),
						DurMillis: time.Hour.Milliseconds(), DeadlineMillis: deadline,
					}
				}
				if err := j.PutNode(fmt.Sprintf("addr-%03d", i), rec); err != nil {
					b.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				b.Fatal(err)
			}
			exts := make([]Extension, 4)
			for k := range exts {
				exts[k] = recoveryExt(fmt.Sprintf("ext-%d", k), 1)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				jb, err := OpenBaseJournal(dir)
				if err != nil {
					b.Fatal(err)
				}
				base, err := NewBase(BaseConfig{
					Name: "hall-1", Addr: "base-1", Caller: idleCaller{},
					Signer: signer, Clock: clk, LeaseDur: time.Hour,
					CallTimeout: time.Second, Journal: jb,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range exts {
					if err := base.AddExtension(e); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				restored, err := base.Recover()
				b.StopTimer()
				if err != nil || restored != n {
					b.Fatalf("restored %d/%d: %v", restored, n, err)
				}
				base.Close()
				jb.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkReconcileRound measures the steady-state overhead of one
// anti-entropy round against an in-sync node holding 8 extensions: the
// inventory RPC plus the diff, with nothing to repair.
func BenchmarkReconcileRound(b *testing.B) {
	clk := clock.NewManual(time.Unix(1000, 0))
	fabric := transport.NewInProc()
	signer, err := sign.NewSigner("hall-1")
	if err != nil {
		b.Fatal(err)
	}
	_, _, stop := serveReceiver(b, fabric, clk, signer)
	defer stop()
	base, _ := newRecoveryBase(b, fabric, clk, signer, "", nil)
	for i := 0; i < 8; i++ {
		if err := base.AddExtension(recoveryExt(fmt.Sprintf("ext-%d", i), 1)); err != nil {
			b.Fatal(err)
		}
	}
	if err := base.AdaptNode("robot1", "robot1"); err != nil {
		b.Fatal(err)
	}

	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := base.ReconcileNow(ctx)
		if r := res["robot1"]; !r.InSync {
			b.Fatalf("round not in sync: %+v", r)
		}
	}
}

func mustSign(b *testing.B, s *sign.Signer, e Extension) SignedExtension {
	b.Helper()
	signed, err := Sign(s, e)
	if err != nil {
		b.Fatal(err)
	}
	return signed
}
