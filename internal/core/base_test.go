package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aop"
	"repro/internal/clock"
	"repro/internal/lvm"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/registry"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/store"
	"repro/internal/testutil"
	"repro/internal/transport"
	"repro/internal/weave"
)

// cluster wires a lookup service, one base and one receiver node onto an
// in-proc fabric whose connectivity follows a mobility world.
type cluster struct {
	fabric   *transport.InProc
	world    *mobility.World
	lookup   *registry.Lookup
	base     *Base
	baseSt   *store.Store
	receiver *Receiver
	weaver   *weave.Weaver
	stops    []func()
}

func (c *cluster) close() {
	for i := len(c.stops) - 1; i >= 0; i-- {
		c.stops[i]()
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	testutil.WaitFor(t, what, cond)
}

func newCluster(t *testing.T, leaseDur time.Duration) *cluster {
	t.Helper()
	c := &cluster{
		fabric: transport.NewInProc(),
		world:  mobility.NewWorld(),
	}
	if err := c.world.AddArea(mobility.Area{Name: "hall-1", Center: mobility.Point{X: 0, Y: 0}, Radius: 10, BaseAddr: "base-1"}); err != nil {
		t.Fatal(err)
	}
	// The lookup service is wired infrastructure reachable only in-hall for
	// nodes; anchor it to the hall by reusing the base address convention.
	if err := c.world.AddNode("robot1", "robot1", mobility.Point{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	c.fabric.SetLinkFunc(c.world.LinkFunc())

	// Lookup service.
	c.lookup = registry.NewLookup(clock.Real{})
	c.lookup.Grantor().Start(5 * time.Millisecond)
	c.stops = append(c.stops, c.lookup.Grantor().Stop)
	lookupMux := transport.NewMux()
	lookupSrv := registry.NewServer("lookup-1", c.lookup, lookupMux, c.fabric.Node("lookup-1"), clock.Real{})
	stop, err := c.fabric.Serve("lookup-1", lookupMux)
	if err != nil {
		t.Fatal(err)
	}
	c.stops = append(c.stops, stop, lookupSrv.Close)

	// Base.
	signer, err := sign.NewSigner("hall-1")
	if err != nil {
		t.Fatal(err)
	}
	c.baseSt = store.NewMemory()
	c.base, err = NewBase(BaseConfig{
		Name:          "base-1",
		Addr:          "base-1",
		Caller:        c.fabric.Node("base-1"),
		Signer:        signer,
		Store:         c.baseSt,
		LeaseDur:      leaseDur,
		RenewFraction: 0.5,
		CallTimeout:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseMux := transport.NewMux()
	c.base.ServeOn(baseMux)
	stop, err = c.fabric.Serve("base-1", baseMux)
	if err != nil {
		t.Fatal(err)
	}
	c.stops = append(c.stops, stop, c.base.Close)

	// Receiver node.
	trust := sign.NewTrustStore()
	trust.Trust("hall-1", signer.PublicKey())
	c.weaver = weave.New()
	builtins := NewBuiltins()
	builtins.Register("noop", func(*Env, map[string]string) (aop.Body, error) {
		return aop.BodyFunc(func(*aop.Context) error { return nil }), nil
	})
	c.receiver, err = NewReceiver(ReceiverConfig{
		NodeName: "robot1",
		Addr:     "robot1",
		Weaver:   c.weaver,
		Trust:    trust,
		Policy:   sandbox.AllowAll(),
		Host:     lvm.HostMap{},
		Builtins: builtins,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.receiver.Grantor().Start(5 * time.Millisecond)
	c.stops = append(c.stops, c.receiver.Grantor().Stop)
	nodeMux := transport.NewMux()
	c.receiver.ServeOn(nodeMux)
	stop, err = c.fabric.Serve("robot1", nodeMux)
	if err != nil {
		t.Fatal(err)
	}
	c.stops = append(c.stops, stop)

	return c
}

func noopExt(name string, version int) Extension {
	return Extension{
		ID:      "ext/" + name,
		Name:    name,
		Version: version,
		Advices: []AdviceSpec{{
			Name:    "a",
			Kind:    KindCallBefore,
			Pattern: "Motor.*(..)",
			Builtin: "noop",
		}},
	}
}

func TestBaseAdaptsArrivingNode(t *testing.T) {
	c := newCluster(t, 200*time.Millisecond)
	defer c.close()

	if err := c.base.AddExtension(noopExt("policy", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.base.WatchLookup(&registry.Client{Caller: c.fabric.Node("base-1"), Addr: "lookup-1"}, time.Minute); err != nil {
		t.Fatal(err)
	}

	// Node arrives: its adaptation service advertises itself.
	client := &registry.Client{Caller: c.fabric.Node("robot1"), Addr: "lookup-1"}
	stopAdv, err := c.receiver.Advertise(client, time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stopAdv()

	waitUntil(t, "extension installed", func() bool { return c.receiver.Has("policy") })
	waitUntil(t, "node adapted at base", func() bool { return len(c.base.Adapted()) == 1 })
}

func TestNodeDepartureRevokesExtensions(t *testing.T) {
	c := newCluster(t, 100*time.Millisecond)
	defer c.close()

	if err := c.base.AddExtension(noopExt("policy", 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.base.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "install", func() bool { return c.receiver.Has("policy") })

	// The robot leaves the hall: links to base-1 drop.
	if err := c.world.MoveNode("robot1", mobility.Point{X: 1000, Y: 0}); err != nil {
		t.Fatal(err)
	}

	// The base notices via failing renewals; the receiver's lease lapses and
	// the extension is withdrawn autonomously.
	waitUntil(t, "lease expiry withdrawal", func() bool { return !c.receiver.Has("policy") })
	waitUntil(t, "base departure record", func() bool { return len(c.base.Adapted()) == 0 })

	sawExpire := false
	for _, a := range c.receiver.Activity() {
		if a.Event == "expire" && a.Ext == "policy" {
			sawExpire = true
		}
	}
	if !sawExpire {
		t.Error("receiver activity lacks expire event")
	}
	sawDepart := false
	for _, a := range c.base.Activity() {
		if a.Event == "depart" {
			sawDepart = true
		}
	}
	if !sawDepart {
		t.Error("base activity lacks depart event")
	}
}

func TestPolicyEvolutionPushesReplacement(t *testing.T) {
	c := newCluster(t, 200*time.Millisecond)
	defer c.close()

	if err := c.base.AddExtension(noopExt("policy", 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.base.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "v1 install", func() bool { return c.receiver.Has("policy") })

	if err := c.base.ReplaceExtension(noopExt("policy", 2)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "v2 replace", func() bool {
		for _, info := range c.receiver.Installed() {
			if info.Name == "policy" && info.Version == 2 {
				return true
			}
		}
		return false
	})

	// Stale replacement rejected.
	if err := c.base.ReplaceExtension(noopExt("policy", 2)); err == nil {
		t.Error("equal version replacement should fail")
	}
}

func TestRemoveExtensionRevokesRemotely(t *testing.T) {
	c := newCluster(t, 200*time.Millisecond)
	defer c.close()

	if err := c.base.AddExtension(noopExt("policy", 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.base.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "install", func() bool { return c.receiver.Has("policy") })

	if err := c.base.RemoveExtension("policy"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "revoke", func() bool { return !c.receiver.Has("policy") })
	if got := c.base.Extensions(); len(got) != 0 {
		t.Errorf("Extensions = %v", got)
	}
}

func TestAddExtensionPushesToAdaptedNodes(t *testing.T) {
	c := newCluster(t, 200*time.Millisecond)
	defer c.close()

	if err := c.base.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}
	if err := c.base.AddExtension(noopExt("late", 1)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "late extension", func() bool { return c.receiver.Has("late") })
}

func TestBasePostStoresRecord(t *testing.T) {
	c := newCluster(t, 200*time.Millisecond)
	defer c.close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err := transport.Invoke[PostReq, EmptyResp](ctx, c.fabric.Node("robot1"), "base-1", MethodBasePost, PostReq{
		Record: store.Record{Robot: "robot1", Device: "motor:x", Action: "rotate", Value: 30, AtMillis: 123},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := c.baseSt.Query(store.Filter{Robot: "robot1"})
	if len(recs) != 1 || recs[0].Action != "rotate" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestRoamingHandoff(t *testing.T) {
	c := newCluster(t, 100*time.Millisecond)
	defer c.close()

	// Second hall with its own base, trusting signer of base-2.
	if err := c.world.AddArea(mobility.Area{Name: "hall-2", Center: mobility.Point{X: 100, Y: 0}, Radius: 10, BaseAddr: "base-2"}); err != nil {
		t.Fatal(err)
	}
	signer2, err := sign.NewSigner("hall-2")
	if err != nil {
		t.Fatal(err)
	}
	base2, err := NewBase(BaseConfig{
		Name:          "base-2",
		Addr:          "base-2",
		Caller:        c.fabric.Node("base-2"),
		Signer:        signer2,
		LeaseDur:      100 * time.Millisecond,
		RenewFraction: 0.5,
		CallTimeout:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux2 := transport.NewMux()
	base2.ServeOn(mux2)
	stop, err := c.fabric.Serve("base-2", mux2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	defer base2.Close()
	if err := base2.AddExtension(noopExt("hall2-policy", 1)); err != nil {
		t.Fatal(err)
	}

	// Receiver must trust hall-2's signer too (its own preference, §3.2).
	c.receiver.cfg.Trust.Trust("hall-2", signer2.PublicKey())

	c.base.AddNeighbor("base-2")
	if err := c.base.AddExtension(noopExt("hall1-policy", 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.base.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "hall-1 adaptation", func() bool { return c.receiver.Has("hall1-policy") })

	// The robot migrates from hall-1 into hall-2.
	if err := c.world.MoveNode("robot1", mobility.Point{X: 100, Y: 0}); err != nil {
		t.Fatal(err)
	}

	// Hall-1's policy is revoked; the roaming hint lets base-2 adapt the node
	// without waiting for a fresh discovery round.
	waitUntil(t, "hall-1 revocation", func() bool { return !c.receiver.Has("hall1-policy") })
	waitUntil(t, "hall-2 adaptation", func() bool { return c.receiver.Has("hall2-policy") })
}

// TestLossyLinkSurvivesWithRetries injects deterministic message loss into
// the fabric: without renewal retries the base spuriously declares the node
// departed; with retries the adaptation survives (§2.1's wireless setting).
func TestLossyLinkSurvivesWithRetries(t *testing.T) {
	run := func(retries int) (stillAdapted bool) {
		c := newCluster(t, 120*time.Millisecond)
		defer c.close()
		if err := c.base.AddExtension(noopExt("policy", 1)); err != nil {
			t.Fatal(err)
		}
		// Reconfigure the base with the retry budget under test.
		base2, err := NewBase(BaseConfig{
			Name: "base-1b", Addr: "base-1", Caller: c.fabric.Node("base-1"),
			Signer: c.base.Signer(), LeaseDur: 120 * time.Millisecond,
			RenewFraction: 0.5, RenewRetries: retries,
			CallTimeout: 300 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer base2.Close()
		if err := base2.AddExtension(noopExt("policy", 1)); err != nil {
			t.Fatal(err)
		}
		if err := base2.AdaptNode("robot1", "robot1"); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "install", func() bool { return c.receiver.Has("policy") })

		// Drop every second message.
		c.fabric.SetLoss(1, 2)
		time.Sleep(500 * time.Millisecond)
		c.fabric.SetLoss(0, 0)
		return c.receiver.Has("policy")
	}

	if run(0) {
		t.Log("note: without retries the adaptation happened to survive 50% loss this run")
	}
	if !run(3) {
		t.Error("adaptation lost despite 3 renewal retries")
	}
}

// A node that is transiently unreachable while the base pushes its policy set
// still converges: the retry policy re-sends the install once the link heals,
// and the receiver's idempotent surface absorbs any duplicate delivery.
func TestAdaptNodeRetriesThroughTransientPartition(t *testing.T) {
	fabric := transport.NewInProc()
	var down atomic.Bool
	fabric.SetLinkFunc(func(from, to string) bool {
		return !down.Load() || from != "base-1" || to != "robot1"
	})

	signer, err := sign.NewSigner("hall-1")
	if err != nil {
		t.Fatal(err)
	}
	trust := sign.NewTrustStore()
	trust.Trust("hall-1", signer.PublicKey())
	builtins := NewBuiltins()
	builtins.Register("noop", func(*Env, map[string]string) (aop.Body, error) {
		return aop.BodyFunc(func(*aop.Context) error { return nil }), nil
	})
	recv, err := NewReceiver(ReceiverConfig{
		NodeName: "robot1",
		Addr:     "robot1",
		Weaver:   weave.New(),
		Trust:    trust,
		Policy:   sandbox.AllowAll(),
		Host:     lvm.HostMap{},
		Builtins: builtins,
	})
	if err != nil {
		t.Fatal(err)
	}
	recvMux := transport.NewMux()
	recv.ServeOn(recvMux)
	stop, err := fabric.Serve("robot1", recvMux)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	pol := transport.NewPolicy(7)
	pol.MaxAttempts = 20
	pol.BaseDelay = 10 * time.Millisecond
	pol.MaxDelay = 20 * time.Millisecond
	reg := metrics.New()
	pol.Instrument(reg)
	base, err := NewBase(BaseConfig{
		Name:        "base-1",
		Addr:        "base-1",
		Caller:      fabric.Node("base-1"),
		Signer:      signer,
		CallTimeout: 5 * time.Second,
		Policy:      pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	if err := base.AddExtension(noopExt("policy", 1)); err != nil {
		t.Fatal(err)
	}

	down.Store(true)
	adapted := make(chan error, 1)
	go func() { adapted <- base.AdaptNode("robot1", "robot1") }()
	time.Sleep(30 * time.Millisecond) // let a few attempts fail
	down.Store(false)

	if err := <-adapted; err != nil {
		t.Fatalf("AdaptNode through transient partition: %v", err)
	}
	if !recv.Has("policy") {
		t.Fatal("extension not installed after link healed")
	}
	if got := reg.Snapshot().Counters["transport.retries"]; got == 0 {
		t.Fatal("partition never forced a retry")
	}
}
