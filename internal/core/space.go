package core

import (
	"context"
	"strconv"
	"time"

	"repro/internal/clock"
	"repro/internal/lease"
	"repro/internal/sign"
	"repro/internal/transport"
	"repro/internal/tuplespace"
)

// Tuple-space distribution: the alternative extension-distribution substrate
// the paper names as future work (§4.6, citing Linda and TSpaces). A base
// writes its signed extensions into a shared space under leases; receivers
// poll the space and install whatever matches, renewing their local leases
// for as long as the tuple stays alive. When the base stops renewing the
// tuple (or the node can no longer reach the space), the extension expires on
// the node exactly like in the push model.

// extensionTupleTag tags extension tuples in a shared space.
const extensionTupleTag = "midas.extension"

// PublishExtension signs ext and writes it into sp under a lease of dur:
// ("midas.extension", name, version, baseAddr, payload).
func PublishExtension(sp *tuplespace.Space, signer *sign.Signer, ext Extension, baseAddr string, dur time.Duration) (tuplespace.Tuple, error) {
	signed, err := Sign(signer, ext)
	if err != nil {
		return nil, err
	}
	payload, err := transport.Encode(signed)
	if err != nil {
		return nil, err
	}
	t := tuplespace.Tuple{
		tuplespace.FStr(extensionTupleTag),
		tuplespace.FStr(ext.Name),
		tuplespace.FInt(int64(ext.Version)),
		tuplespace.FStr(baseAddr),
		tuplespace.FBytes(payload),
	}
	sp.Out(t, dur)
	return t, nil
}

// extensionTemplate matches all extension tuples.
func extensionTemplate() tuplespace.Tuple {
	return tuplespace.Tuple{
		tuplespace.FStr(extensionTupleTag),
		tuplespace.FAny(),
		tuplespace.FAny(),
		tuplespace.FAny(),
		tuplespace.FAny(),
	}
}

// SpaceListener keeps one receiver synchronised with the extensions present
// in a tuple space.
type SpaceListener struct {
	Space    *tuplespace.Space
	Receiver *Receiver
	// Poll is the space scan interval (default 50ms).
	Poll time.Duration
	// LeaseDur is the local lease granted per installed extension; it must
	// comfortably exceed Poll (default 4×Poll).
	LeaseDur time.Duration
	// Clock paces the scan loop (default: the real clock).
	Clock clock.Clock

	leases map[string]string // "name@version" -> lease id
}

// Run scans the space until ctx is cancelled: new extension tuples are
// verified and installed; known ones have their local leases renewed. When a
// tuple disappears, renewals stop and the receiver expires the extension on
// its own.
func (l *SpaceListener) Run(ctx context.Context) error {
	poll := l.Poll
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	leaseDur := l.LeaseDur
	if leaseDur <= 0 {
		leaseDur = 4 * poll
	}
	if l.leases == nil {
		l.leases = make(map[string]string)
	}
	clk := l.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	for {
		l.Scan(leaseDur)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-clk.After(poll):
		}
	}
}

// Scan performs one synchronisation round; Run calls it periodically, and
// deterministic tests or manual pollers may call it directly.
func (l *SpaceListener) Scan(leaseDur time.Duration) {
	if l.leases == nil {
		l.leases = make(map[string]string)
	}
	for _, t := range l.Space.RdAll(extensionTemplate()) {
		if len(t) != 5 {
			continue
		}
		key := t[1].S + "@" + strconv.FormatInt(t[2].I, 10)
		baseAddr := t[3].S
		if id, known := l.leases[key]; known {
			if err := l.Receiver.Renew(lease.ID(id), leaseDur); err == nil {
				continue
			}
			// Lease vanished (expired during a long pause): re-install.
			delete(l.leases, key)
		}
		var signed SignedExtension
		if err := transport.Decode(t[4].B, &signed); err != nil {
			continue // malformed tuple: ignore, it is not for us
		}
		id, err := l.Receiver.Install(signed, baseAddr, leaseDur)
		if err != nil {
			continue // untrusted, stale version, or policy rejection
		}
		l.leases[key] = string(id)
	}
}
