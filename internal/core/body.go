package core

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/aop"
	"repro/internal/lvm"
	"repro/internal/lvm/analysis"
)

// Env is the node-side environment handed to advice bodies: the (gated) host
// functions of the node plus identity information. Builtins receive it at
// construction; mobile code reaches it through host calls.
type Env struct {
	NodeName string
	BaseAddr string // address of the base that installed the extension
	Host     lvm.Host
	// Extras carries node-local native facilities (e.g. a *txn.Manager) that
	// builtins may use after checking their granted capabilities.
	Extras map[string]any
}

// Factory builds a builtin advice body from its configuration.
type Factory func(env *Env, cfg map[string]string) (aop.Body, error)

// Builtins is a registry of named advice factories compiled into a node.
type Builtins struct {
	mu        sync.RWMutex
	factories map[string]Factory
	bundles   map[string]Extension
}

// NewBuiltins returns an empty registry.
func NewBuiltins() *Builtins {
	return &Builtins{
		factories: make(map[string]Factory),
		bundles:   make(map[string]Extension),
	}
}

// Register installs a factory under name, overwriting any previous one.
func (b *Builtins) Register(name string, f Factory) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.factories[name] = f
}

// New builds the named builtin body.
func (b *Builtins) New(name string, env *Env, cfg map[string]string) (aop.Body, error) {
	b.mu.RLock()
	f, ok := b.factories[name]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown builtin advice %q", name)
	}
	return f(env, cfg)
}

// RegisterBundle registers a complete implicit extension under its name;
// receivers auto-install it when another extension Requires it (the paper's
// session-management example in §3.3).
func (b *Builtins) RegisterBundle(ext Extension) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bundles[ext.Name] = ext
}

// Bundle fetches a registered implicit extension.
func (b *Builtins) Bundle(name string) (Extension, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	e, ok := b.bundles[name]
	return e, ok
}

// AdviceClass and AdviceMethod define the shape mobile advice code must have:
// a class named Ext with a niladic method named advice. The join point is
// reached through ctx.* host calls.
const (
	AdviceClass  = "Ext"
	AdviceMethod = "advice"
)

// defaultAdviceMaxSteps is the interpreter budget for advice whose cost the
// static analyzer could not bound (loops, recursion).
const defaultAdviceMaxSteps = 200_000

// CompileAdvice assembles mobile advice source and wraps it as an aop.Body
// whose host calls go through the node's sandboxed host plus the ctx.*
// join-point accessors.
func CompileAdvice(source string, host lvm.Host) (aop.Body, error) {
	prog, err := lvm.Assemble(source)
	if err != nil {
		return nil, fmt.Errorf("core: advice code: %w", err)
	}
	cls := prog.Class(AdviceClass)
	if cls == nil {
		return nil, fmt.Errorf("core: advice code must define class %s", AdviceClass)
	}
	meth := cls.Methods[AdviceMethod]
	if meth == nil {
		return nil, fmt.Errorf("core: advice code must define %s.%s()", AdviceClass, AdviceMethod)
	}
	if meth.Arity() != 0 {
		return nil, fmt.Errorf("core: %s.%s must take no parameters", AdviceClass, AdviceMethod)
	}
	// Mobile code is verified before it is ever executed: the static analyzer
	// checks operand ranges, jump targets, stack discipline and typed operand
	// use across all paths (strictly stronger than lvm.VerifyProgram), and
	// its cost analysis sizes the interpreter's fuel budget.
	rep, err := analysis.AnalyzeProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("core: advice code rejected: %w", err)
	}
	b := &codeBody{prog: prog, meth: meth, self: cls.New()}
	b.interp = lvm.NewInterp(prog, &ctxHost{inner: host, body: b})
	b.interp.MaxSteps = int64(adviceMaxSteps(rep.Method(AdviceClass, AdviceMethod).Fuel))
	return b, nil
}

// adviceMaxSteps converts a static fuel verdict into an interpreter budget:
// provably bounded advice runs under its exact bound (small slack for the
// invoke overhead), everything else keeps the legacy fixed cap.
func adviceMaxSteps(f analysis.Fuel) int {
	if f.Bounded {
		return f.Steps + 8
	}
	return defaultAdviceMaxSteps
}

// codeBody executes one mobile advice method. Executions are serialised per
// body so the ctx.* host accessors see a consistent join point.
type codeBody struct {
	mu     sync.Mutex
	prog   *lvm.Program
	meth   *lvm.Method
	self   *lvm.Object
	interp *lvm.Interp
	cur    *aop.Context
}

// Exec implements aop.Body.
func (b *codeBody) Exec(ctx *aop.Context) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cur = ctx
	defer func() { b.cur = nil }()
	_, err := b.interp.Invoke(b.meth, b.self, nil)
	return err
}

// ctxHost layers the ctx.* join-point accessors over the node host. All
// other calls fall through to the (typically sandbox-gated) inner host.
type ctxHost struct {
	inner lvm.Host
	body  *codeBody
}

// HostCall implements lvm.Host.
func (h *ctxHost) HostCall(name string, args []lvm.Value) (lvm.Value, error) {
	ctx := h.body.cur
	switch name {
	case "ctx.kind":
		return lvm.Str(ctx.Kind.String()), nil
	case "ctx.class":
		return lvm.Str(ctx.Sig.Class), nil
	case "ctx.method":
		return lvm.Str(ctx.Sig.Method), nil
	case "ctx.field":
		return lvm.Str(ctx.Field), nil
	case "ctx.errmsg":
		return lvm.Str(ctx.ErrMsg), nil
	case "ctx.argc":
		return lvm.Int(int64(len(ctx.Args))), nil
	case "ctx.arg":
		if len(args) != 1 {
			return lvm.Nil(), lvm.Throwf("ctx.arg needs an index")
		}
		return ctx.Arg(int(args[0].I)), nil
	case "ctx.setarg":
		if len(args) != 2 {
			return lvm.Nil(), lvm.Throwf("ctx.setarg needs index and value")
		}
		ctx.SetArg(int(args[0].I), args[1])
		return lvm.Nil(), nil
	case "ctx.result":
		return ctx.Result, nil
	case "ctx.setresult":
		if len(args) != 1 {
			return lvm.Nil(), lvm.Throwf("ctx.setresult needs a value")
		}
		ctx.SetResult(args[0])
		return lvm.Nil(), nil
	case "ctx.abort":
		msg := "aborted by extension"
		if len(args) > 0 {
			msg = args[0].String()
		}
		ctx.Abort(msg)
		return lvm.Nil(), nil
	case "ctx.put":
		if len(args) != 2 {
			return lvm.Nil(), lvm.Throwf("ctx.put needs key and value")
		}
		ctx.Put(args[0].S, args[1])
		return lvm.Nil(), nil
	case "ctx.get":
		if len(args) != 1 {
			return lvm.Nil(), lvm.Throwf("ctx.get needs a key")
		}
		v, _ := ctx.Get(args[0].S)
		return v, nil
	case "ctx.selfget":
		if len(args) != 1 || ctx.Self == nil {
			return lvm.Nil(), nil
		}
		v, _ := ctx.Self.FieldByName(args[0].S)
		return v, nil
	}
	if h.inner == nil {
		return lvm.Nil(), lvm.Throwf("no host environment for %s", name)
	}
	return h.inner.HostCall(name, args)
}

// Prechecked implements lvm.PrecheckedHost. ctx.* calls are served locally
// (and need the current join point, so they never bypass this layer); every
// other function delegates the proof query to the inner host.
func (h *ctxHost) Prechecked(name string) lvm.Host {
	if strings.HasPrefix(name, "ctx.") {
		return nil
	}
	if ph, ok := h.inner.(lvm.PrecheckedHost); ok {
		return ph.Prechecked(name)
	}
	return nil
}

var _ lvm.PrecheckedHost = (*ctxHost)(nil)
