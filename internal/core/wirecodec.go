package core

import "repro/internal/wire"

// Wire codecs for the hot RPC message types: renew/renewBatch (the renewal
// window's per-lease cost), applyBatch install/revoke items (adapt and
// reconcile pushes), and the inventory exchange (anti-entropy rounds). Each
// type writes its fields in declaration order; slices and maps go through the
// codec's count-prefixed, key-sorted forms so equal values always produce
// equal bytes (golden vectors and same-seed replays depend on it). The cold
// surface (list/metrics/trace) stays on gob — transport falls back per type.

// MarshalWire encodes a with the wire codec.
func (a AdviceSpec) MarshalWire(e *wire.Encoder) {
	e.String(a.Name)
	e.String(a.Kind)
	e.String(a.Pattern)
	e.String(a.Builtin)
	e.StringMap(a.Config)
	e.String(a.Code)
}

// UnmarshalWire decodes a from the wire codec.
func (a *AdviceSpec) UnmarshalWire(d *wire.Decoder) error {
	a.Name = d.String()
	a.Kind = d.String()
	a.Pattern = d.String()
	a.Builtin = d.String()
	a.Config = d.StringMap()
	a.Code = d.String()
	return d.Err()
}

// MarshalWire encodes x with the wire codec.
func (x Extension) MarshalWire(e *wire.Encoder) {
	e.String(x.ID)
	e.String(x.Name)
	e.Varint(int64(x.Version))
	e.Varint(int64(x.Priority))
	e.Len(len(x.Advices))
	for _, a := range x.Advices {
		a.MarshalWire(e)
	}
	e.StringSlice(x.Requires)
	e.StringSlice(x.Caps)
	e.StringSlice(x.Flows)
	e.StringMap(x.Meta)
}

// UnmarshalWire decodes x from the wire codec.
func (x *Extension) UnmarshalWire(d *wire.Decoder) error {
	x.ID = d.String()
	x.Name = d.String()
	x.Version = int(d.Varint())
	x.Priority = int(d.Varint())
	if n := d.Len(); n > 0 {
		x.Advices = make([]AdviceSpec, n)
		for i := range x.Advices {
			if err := x.Advices[i].UnmarshalWire(d); err != nil {
				return err
			}
		}
	} else {
		x.Advices = nil
	}
	x.Requires = d.StringSlice()
	x.Caps = d.StringSlice()
	x.Flows = d.StringSlice()
	x.Meta = d.StringMap()
	return d.Err()
}

// MarshalWire encodes s with the wire codec.
func (s SignedExtension) MarshalWire(e *wire.Encoder) {
	s.Ext.MarshalWire(e)
	s.Sig.MarshalWire(e)
}

// UnmarshalWire decodes s from the wire codec.
func (s *SignedExtension) UnmarshalWire(d *wire.Decoder) error {
	if err := s.Ext.UnmarshalWire(d); err != nil {
		return err
	}
	return s.Sig.UnmarshalWire(d)
}

// MarshalWire encodes i with the wire codec.
func (i ExtensionInfo) MarshalWire(e *wire.Encoder) {
	e.String(i.ID)
	e.String(i.Name)
	e.Varint(int64(i.Version))
	e.String(i.BaseAddr)
	e.Bool(i.System)
}

// UnmarshalWire decodes i from the wire codec.
func (i *ExtensionInfo) UnmarshalWire(d *wire.Decoder) error {
	i.ID = d.String()
	i.Name = d.String()
	i.Version = int(d.Varint())
	i.BaseAddr = d.String()
	i.System = d.Bool()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r InstallReq) MarshalWire(e *wire.Encoder) {
	r.Signed.MarshalWire(e)
	e.String(r.BaseAddr)
	e.Varint(r.DurMillis)
}

// UnmarshalWire decodes r from the wire codec.
func (r *InstallReq) UnmarshalWire(d *wire.Decoder) error {
	if err := r.Signed.UnmarshalWire(d); err != nil {
		return err
	}
	r.BaseAddr = d.String()
	r.DurMillis = d.Varint()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r InstallResp) MarshalWire(e *wire.Encoder) { e.String(r.LeaseID) }

// UnmarshalWire decodes r from the wire codec.
func (r *InstallResp) UnmarshalWire(d *wire.Decoder) error {
	r.LeaseID = d.String()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r RenewExtReq) MarshalWire(e *wire.Encoder) {
	e.String(r.LeaseID)
	e.Varint(r.DurMillis)
}

// UnmarshalWire decodes r from the wire codec.
func (r *RenewExtReq) UnmarshalWire(d *wire.Decoder) error {
	r.LeaseID = d.String()
	r.DurMillis = d.Varint()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r RenewExtResp) MarshalWire(e *wire.Encoder) { e.Varint(r.DurMillis) }

// UnmarshalWire decodes r from the wire codec.
func (r *RenewExtResp) UnmarshalWire(d *wire.Decoder) error {
	r.DurMillis = d.Varint()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r RevokeReq) MarshalWire(e *wire.Encoder) { e.String(r.Name) }

// UnmarshalWire decodes r from the wire codec.
func (r *RevokeReq) UnmarshalWire(d *wire.Decoder) error {
	r.Name = d.String()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r ListResp) MarshalWire(e *wire.Encoder) {
	e.Len(len(r.Extensions))
	for _, x := range r.Extensions {
		x.MarshalWire(e)
	}
}

// UnmarshalWire decodes r from the wire codec.
func (r *ListResp) UnmarshalWire(d *wire.Decoder) error {
	if n := d.Len(); n > 0 {
		r.Extensions = make([]ExtensionInfo, n)
		for i := range r.Extensions {
			if err := r.Extensions[i].UnmarshalWire(d); err != nil {
				return err
			}
		}
	} else {
		r.Extensions = nil
	}
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r EmptyResp) MarshalWire(e *wire.Encoder) {}

// UnmarshalWire decodes r from the wire codec.
func (r *EmptyResp) UnmarshalWire(d *wire.Decoder) error { return d.Err() }

// MarshalWire encodes r with the wire codec. WantObs is a trailing optional
// field written only when set, so un-instrumented fleets produce the exact
// bytes of the previous wire generation (golden vectors included).
func (r RenewBatchReq) MarshalWire(e *wire.Encoder) {
	e.Len(len(r.Items))
	for _, it := range r.Items {
		it.MarshalWire(e)
	}
	if r.WantObs {
		e.Bool(true)
	}
}

// UnmarshalWire decodes r from the wire codec.
func (r *RenewBatchReq) UnmarshalWire(d *wire.Decoder) error {
	if n := d.Len(); n > 0 {
		r.Items = make([]RenewExtReq, n)
		for i := range r.Items {
			if err := r.Items[i].UnmarshalWire(d); err != nil {
				return err
			}
		}
	} else {
		r.Items = nil
	}
	r.WantObs = d.More() && d.Bool()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r RenewItemResp) MarshalWire(e *wire.Encoder) {
	e.Varint(r.DurMillis)
	e.String(r.Err)
}

// UnmarshalWire decodes r from the wire codec.
func (r *RenewItemResp) UnmarshalWire(d *wire.Decoder) error {
	r.DurMillis = d.Varint()
	r.Err = d.String()
	return d.Err()
}

// MarshalWire encodes r with the wire codec. The piggybacked ObsReport is a
// trailing optional field written only when present — a node only attaches it
// when the request asked (WantObs), so old bases never see the extra bytes.
func (r RenewBatchResp) MarshalWire(e *wire.Encoder) {
	e.Len(len(r.Items))
	for _, it := range r.Items {
		it.MarshalWire(e)
	}
	if r.Obs != nil {
		r.Obs.MarshalWire(e)
	}
}

// UnmarshalWire decodes r from the wire codec.
func (r *RenewBatchResp) UnmarshalWire(d *wire.Decoder) error {
	if n := d.Len(); n > 0 {
		r.Items = make([]RenewItemResp, n)
		for i := range r.Items {
			if err := r.Items[i].UnmarshalWire(d); err != nil {
				return err
			}
		}
	} else {
		r.Items = nil
	}
	r.Obs = nil
	if d.More() {
		r.Obs = new(ObsReport)
		if err := r.Obs.UnmarshalWire(d); err != nil {
			return err
		}
	}
	return d.Err()
}

// MarshalWire encodes m with the wire codec.
func (m ObsMethodDelta) MarshalWire(e *wire.Encoder) {
	e.String(m.Method)
	e.Uvarint(m.Count)
	e.Uvarint(m.Errors)
	e.Varint(m.SumNs)
}

// UnmarshalWire decodes m from the wire codec.
func (m *ObsMethodDelta) UnmarshalWire(d *wire.Decoder) error {
	m.Method = d.String()
	m.Count = d.Uvarint()
	m.Errors = d.Uvarint()
	m.SumNs = d.Varint()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r ObsReport) MarshalWire(e *wire.Encoder) {
	e.Len(len(r.Methods))
	for _, m := range r.Methods {
		m.MarshalWire(e)
	}
	e.Uvarint(r.SpansDropped)
	e.Uvarint(r.SampledOut)
	e.Uvarint(r.TailKept)
}

// UnmarshalWire decodes r from the wire codec.
func (r *ObsReport) UnmarshalWire(d *wire.Decoder) error {
	if n := d.Len(); n > 0 {
		r.Methods = make([]ObsMethodDelta, n)
		for i := range r.Methods {
			if err := r.Methods[i].UnmarshalWire(d); err != nil {
				return err
			}
		}
	} else {
		r.Methods = nil
	}
	r.SpansDropped = d.Uvarint()
	r.SampledOut = d.Uvarint()
	r.TailKept = d.Uvarint()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r ApplyBatchReq) MarshalWire(e *wire.Encoder) {
	e.Len(len(r.Installs))
	for _, it := range r.Installs {
		it.MarshalWire(e)
	}
	e.StringSlice(r.Revokes)
}

// UnmarshalWire decodes r from the wire codec.
func (r *ApplyBatchReq) UnmarshalWire(d *wire.Decoder) error {
	if n := d.Len(); n > 0 {
		r.Installs = make([]InstallReq, n)
		for i := range r.Installs {
			if err := r.Installs[i].UnmarshalWire(d); err != nil {
				return err
			}
		}
	} else {
		r.Installs = nil
	}
	r.Revokes = d.StringSlice()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r InstallItemResp) MarshalWire(e *wire.Encoder) {
	e.String(r.LeaseID)
	e.String(r.Err)
}

// UnmarshalWire decodes r from the wire codec.
func (r *InstallItemResp) UnmarshalWire(d *wire.Decoder) error {
	r.LeaseID = d.String()
	r.Err = d.String()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r RevokeItemResp) MarshalWire(e *wire.Encoder) { e.String(r.Err) }

// UnmarshalWire decodes r from the wire codec.
func (r *RevokeItemResp) UnmarshalWire(d *wire.Decoder) error {
	r.Err = d.String()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r ApplyBatchResp) MarshalWire(e *wire.Encoder) {
	e.Len(len(r.Installs))
	for _, it := range r.Installs {
		it.MarshalWire(e)
	}
	e.Len(len(r.Revokes))
	for _, it := range r.Revokes {
		it.MarshalWire(e)
	}
}

// UnmarshalWire decodes r from the wire codec.
func (r *ApplyBatchResp) UnmarshalWire(d *wire.Decoder) error {
	if n := d.Len(); n > 0 {
		r.Installs = make([]InstallItemResp, n)
		for i := range r.Installs {
			if err := r.Installs[i].UnmarshalWire(d); err != nil {
				return err
			}
		}
	} else {
		r.Installs = nil
	}
	if n := d.Len(); n > 0 {
		r.Revokes = make([]RevokeItemResp, n)
		for i := range r.Revokes {
			if err := r.Revokes[i].UnmarshalWire(d); err != nil {
				return err
			}
		}
	} else {
		r.Revokes = nil
	}
	return d.Err()
}

// MarshalWire encodes i with the wire codec.
func (i InventoryItem) MarshalWire(e *wire.Encoder) {
	e.String(i.Name)
	e.Varint(int64(i.Version))
	e.String(i.BaseAddr)
	e.String(i.LeaseID)
	e.Varint(i.DeadlineMillis)
}

// UnmarshalWire decodes i from the wire codec.
func (i *InventoryItem) UnmarshalWire(d *wire.Decoder) error {
	i.Name = d.String()
	i.Version = int(d.Varint())
	i.BaseAddr = d.String()
	i.LeaseID = d.String()
	i.DeadlineMillis = d.Varint()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r InventoryResp) MarshalWire(e *wire.Encoder) {
	e.String(r.Node)
	e.Len(len(r.Items))
	for _, it := range r.Items {
		it.MarshalWire(e)
	}
}

// UnmarshalWire decodes r from the wire codec.
func (r *InventoryResp) UnmarshalWire(d *wire.Decoder) error {
	r.Node = d.String()
	if n := d.Len(); n > 0 {
		r.Items = make([]InventoryItem, n)
		for i := range r.Items {
			if err := r.Items[i].UnmarshalWire(d); err != nil {
				return err
			}
		}
	} else {
		r.Items = nil
	}
	return d.Err()
}
