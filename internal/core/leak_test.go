package core

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/sign"
)

// TestNoGoroutineLeaksOnTeardown spins up the full cluster (lookup, base,
// receiver, renewers, sweepers), exercises it, tears it down, and checks
// that the goroutine count returns to its baseline — every background
// goroutine in the platform must be stoppable and stopped.
func TestNoGoroutineLeaksOnTeardown(t *testing.T) {
	baseline := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		c := newCluster(t, 100*time.Millisecond)
		if err := c.base.AddExtension(noopExt("policy", 1)); err != nil {
			t.Fatal(err)
		}
		if err := c.base.AdaptNode("robot1", "robot1"); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "install", func() bool { return c.receiver.Has("policy") })
		c.close()
	}

	// Allow stopped goroutines to unwind.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:n])
}

// slowPushCaller parks install traffic (singleton and batched) until release
// is closed, so a test can interleave Release/Close with an in-flight push,
// and counts renewal attempts arriving afterwards.
type slowPushCaller struct {
	installing chan struct{} // receives once per install call, before parking
	release    chan struct{}
	renews     atomic.Int32
}

func (c *slowPushCaller) Call(_ context.Context, _, method string, req, resp any) error {
	switch method {
	case MethodInstall:
		c.installing <- struct{}{}
		<-c.release
		*(resp.(*InstallResp)) = InstallResp{LeaseID: "L1"}
	case MethodApplyBatch:
		c.installing <- struct{}{}
		<-c.release
		out := ApplyBatchResp{}
		for i := range req.(ApplyBatchReq).Installs {
			out.Installs = append(out.Installs, InstallItemResp{LeaseID: "L" + string(rune('1'+i))})
		}
		*(resp.(*ApplyBatchResp)) = out
	case MethodRenewE:
		c.renews.Add(1)
		*(resp.(*RenewExtResp)) = RenewExtResp{DurMillis: time.Minute.Milliseconds()}
	case MethodRenewBatch:
		c.renews.Add(1)
		out := RenewBatchResp{}
		for range req.(RenewBatchReq).Items {
			out.Items = append(out.Items, RenewItemResp{DurMillis: time.Minute.Milliseconds()})
		}
		*(resp.(*RenewBatchResp)) = out
	}
	return nil
}

// TestNoRenewerLeakWhenNodeDepartsMidPush pins the trackGrant guard: when the
// node is released — or the whole base closed — while its install RPC is
// still in flight, the push must NOT schedule a renewal afterwards. A wheel
// entry for an untracked node would leak: nobody would ever cancel it, and it
// would renew the abandoned lease forever.
func TestNoRenewerLeakWhenNodeDepartsMidPush(t *testing.T) {
	for _, tc := range []struct {
		name string
		cut  func(b *Base)
	}{
		{"release", func(b *Base) { b.Release("robot1") }},
		{"close", func(b *Base) { b.Close() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			clk := clock.NewManual(time.Unix(1000, 0))
			signer, err := sign.NewSigner("hall-1")
			if err != nil {
				t.Fatal(err)
			}
			caller := &slowPushCaller{
				installing: make(chan struct{}),
				release:    make(chan struct{}),
			}
			b, err := NewBase(BaseConfig{
				Name:          "hall-1",
				Addr:          "base-1",
				Caller:        caller,
				Signer:        signer,
				Clock:         clk,
				LeaseDur:      time.Minute,
				RenewFraction: 0.5,
				CallTimeout:   time.Hour,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			if err := b.AddExtension(noopExt("policy", 1)); err != nil {
				t.Fatal(err)
			}

			adaptDone := make(chan error, 1)
			go func() { adaptDone <- b.AdaptNode("robot1", "robot1") }()
			<-caller.installing // push is in flight, parked in the caller
			tc.cut(b)           // node departs / base closes mid-push
			close(caller.release)
			if err := <-adaptDone; err != nil {
				t.Fatalf("adapt: %v", err)
			}

			if got := b.Adapted(); len(got) != 0 {
				t.Fatalf("adapted = %v after %s mid-push", got, tc.name)
			}
			// If a renewer slipped through, it would wake at t+30s and renew
			// the abandoned lease. Advance well past several windows.
			for i := 0; i < 10; i++ {
				clk.Advance(30 * time.Second)
				time.Sleep(5 * time.Millisecond)
			}
			if got := caller.renews.Load(); got != 0 {
				t.Fatalf("%d renewals after %s mid-push: leaked renewer", got, tc.name)
			}
			if got := b.ScheduledRenewals(); got != 0 {
				t.Fatalf("%d wheel entries after %s mid-push: leaked schedule", got, tc.name)
			}
			// The timer wheel's run loop keeps (at most) one waiter armed on a
			// Manual clock; anything beyond that is a leaked renewal schedule.
			if clk.PendingTimers() > 1 {
				t.Fatalf("%d timers pending: leaked renewer schedule", clk.PendingTimers())
			}

			deadline := time.Now().Add(3 * time.Second)
			for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline+2 {
				runtime.Gosched()
				time.Sleep(10 * time.Millisecond)
			}
			if now := runtime.NumGoroutine(); now > baseline+2 {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutines leaked mid-push: baseline %d, now %d\n%s", baseline, now, buf[:n])
			}
		})
	}
}

// TestNoScheduleLeakWhenNodeDepartsMidBatchedPush is the batched-RPC twin of
// the mid-push leak test: a multi-extension adapt rides one midas.applyBatch
// call, and cutting the node while that batch is in flight must leave no
// wheel entry behind — none of the batch's leases may ever be renewed.
func TestNoScheduleLeakWhenNodeDepartsMidBatchedPush(t *testing.T) {
	for _, tc := range []struct {
		name string
		cut  func(b *Base)
	}{
		{"release", func(b *Base) { b.Release("robot1") }},
		{"close", func(b *Base) { b.Close() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clk := clock.NewManual(time.Unix(1000, 0))
			signer, err := sign.NewSigner("hall-1")
			if err != nil {
				t.Fatal(err)
			}
			caller := &slowPushCaller{
				installing: make(chan struct{}),
				release:    make(chan struct{}),
			}
			b, err := NewBase(BaseConfig{
				Name:          "hall-1",
				Addr:          "base-1",
				Caller:        caller,
				Signer:        signer,
				Clock:         clk,
				LeaseDur:      time.Minute,
				RenewFraction: 0.5,
				CallTimeout:   time.Hour,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			// Two extensions make the adapt take the batched path.
			if err := b.AddExtension(noopExt("policy", 1)); err != nil {
				t.Fatal(err)
			}
			if err := b.AddExtension(noopExt("audit", 1)); err != nil {
				t.Fatal(err)
			}

			adaptDone := make(chan error, 1)
			go func() { adaptDone <- b.AdaptNode("robot1", "robot1") }()
			<-caller.installing // the applyBatch is in flight, parked
			tc.cut(b)           // node departs / base closes mid-batch
			close(caller.release)
			if err := <-adaptDone; err != nil {
				t.Fatalf("adapt: %v", err)
			}

			if got := b.Adapted(); len(got) != 0 {
				t.Fatalf("adapted = %v after %s mid-batch", got, tc.name)
			}
			if got := b.ScheduledRenewals(); got != 0 {
				t.Fatalf("%d wheel entries after %s mid-batch: leaked schedule", got, tc.name)
			}
			for i := 0; i < 10; i++ {
				clk.Advance(30 * time.Second)
				time.Sleep(5 * time.Millisecond)
			}
			if got := caller.renews.Load(); got != 0 {
				t.Fatalf("%d renewals after %s mid-batch: leaked schedule", got, tc.name)
			}
			if clk.PendingTimers() > 1 {
				t.Fatalf("%d timers pending: leaked renewer schedule", clk.PendingTimers())
			}
		})
	}
}
