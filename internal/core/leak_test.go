package core

import (
	"runtime"
	"testing"
	"time"
)

// TestNoGoroutineLeaksOnTeardown spins up the full cluster (lookup, base,
// receiver, renewers, sweepers), exercises it, tears it down, and checks
// that the goroutine count returns to its baseline — every background
// goroutine in the platform must be stoppable and stopped.
func TestNoGoroutineLeaksOnTeardown(t *testing.T) {
	baseline := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		c := newCluster(t, 100*time.Millisecond)
		if err := c.base.AddExtension(noopExt("policy", 1)); err != nil {
			t.Fatal(err)
		}
		if err := c.base.AdaptNode("robot1", "robot1"); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "install", func() bool { return c.receiver.Has("policy") })
		c.close()
	}

	// Allow stopped goroutines to unwind.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:n])
}
