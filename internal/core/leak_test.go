package core

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/sign"
)

// TestNoGoroutineLeaksOnTeardown spins up the full cluster (lookup, base,
// receiver, renewers, sweepers), exercises it, tears it down, and checks
// that the goroutine count returns to its baseline — every background
// goroutine in the platform must be stoppable and stopped.
func TestNoGoroutineLeaksOnTeardown(t *testing.T) {
	baseline := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		c := newCluster(t, 100*time.Millisecond)
		if err := c.base.AddExtension(noopExt("policy", 1)); err != nil {
			t.Fatal(err)
		}
		if err := c.base.AdaptNode("robot1", "robot1"); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "install", func() bool { return c.receiver.Has("policy") })
		c.close()
	}

	// Allow stopped goroutines to unwind.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:n])
}

// slowPushCaller parks MethodInstall calls until release is closed, so a test
// can interleave Release/Close with an in-flight push, and counts renewal
// attempts arriving afterwards.
type slowPushCaller struct {
	installing chan struct{} // receives once per install call, before parking
	release    chan struct{}
	renews     atomic.Int32
}

func (c *slowPushCaller) Call(_ context.Context, _, method string, _, resp any) error {
	switch method {
	case MethodInstall:
		c.installing <- struct{}{}
		<-c.release
		*(resp.(*InstallResp)) = InstallResp{LeaseID: "L1"}
	case MethodRenewE:
		c.renews.Add(1)
		*(resp.(*RenewExtResp)) = RenewExtResp{DurMillis: time.Minute.Milliseconds()}
	}
	return nil
}

// TestNoRenewerLeakWhenNodeDepartsMidPush pins the startRenewer guard: when
// the node is released — or the whole base closed — while its install RPC is
// still in flight, the push must NOT register or start a renewer afterwards.
// An unstoppable renewer for an untracked node would renew (and leak) forever.
func TestNoRenewerLeakWhenNodeDepartsMidPush(t *testing.T) {
	for _, tc := range []struct {
		name string
		cut  func(b *Base)
	}{
		{"release", func(b *Base) { b.Release("robot1") }},
		{"close", func(b *Base) { b.Close() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			clk := clock.NewManual(time.Unix(1000, 0))
			signer, err := sign.NewSigner("hall-1")
			if err != nil {
				t.Fatal(err)
			}
			caller := &slowPushCaller{
				installing: make(chan struct{}),
				release:    make(chan struct{}),
			}
			b, err := NewBase(BaseConfig{
				Name:          "hall-1",
				Addr:          "base-1",
				Caller:        caller,
				Signer:        signer,
				Clock:         clk,
				LeaseDur:      time.Minute,
				RenewFraction: 0.5,
				CallTimeout:   time.Hour,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			if err := b.AddExtension(noopExt("policy", 1)); err != nil {
				t.Fatal(err)
			}

			adaptDone := make(chan error, 1)
			go func() { adaptDone <- b.AdaptNode("robot1", "robot1") }()
			<-caller.installing // push is in flight, parked in the caller
			tc.cut(b)           // node departs / base closes mid-push
			close(caller.release)
			if err := <-adaptDone; err != nil {
				t.Fatalf("adapt: %v", err)
			}

			if got := b.Adapted(); len(got) != 0 {
				t.Fatalf("adapted = %v after %s mid-push", got, tc.name)
			}
			// If a renewer slipped through, it would wake at t+30s and renew
			// the abandoned lease. Advance well past several windows.
			for i := 0; i < 10; i++ {
				clk.Advance(30 * time.Second)
				time.Sleep(5 * time.Millisecond)
			}
			if got := caller.renews.Load(); got != 0 {
				t.Fatalf("%d renewals after %s mid-push: leaked renewer", got, tc.name)
			}
			if clk.PendingTimers() != 0 {
				t.Fatalf("%d timers pending: leaked renewer schedule", clk.PendingTimers())
			}

			deadline := time.Now().Add(3 * time.Second)
			for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline+2 {
				runtime.Gosched()
				time.Sleep(10 * time.Millisecond)
			}
			if now := runtime.NumGoroutine(); now > baseline+2 {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutines leaked mid-push: baseline %d, now %d\n%s", baseline, now, buf[:n])
			}
		})
	}
}
