package core_test

import (
	"fmt"
	"time"

	"repro/internal/aop"
	"repro/internal/core"
	"repro/internal/lvm"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/weave"
)

// ExampleReceiver walks the receiver side of MIDAS: a signed extension
// arrives from a trusted base, is woven, and later expires when its lease is
// not renewed.
func ExampleReceiver() {
	// The hall's identity, trusted by the node.
	hall, err := sign.NewSigner("hall-1")
	if err != nil {
		fmt.Println(err)
		return
	}
	trust := sign.NewTrustStore()
	trust.Trust("hall-1", hall.PublicKey())

	// The node: a weaver, a builtin advice library, an adaptation service.
	weaver := weave.New()
	builtins := core.NewBuiltins()
	builtins.Register("announce", func(env *core.Env, cfg map[string]string) (aop.Body, error) {
		return aop.BodyFunc(func(ctx *aop.Context) error {
			fmt.Printf("extension saw %s.%s\n", ctx.Sig.Class, ctx.Sig.Method)
			return nil
		}), nil
	})
	receiver, err := core.NewReceiver(core.ReceiverConfig{
		NodeName: "robot-1",
		Weaver:   weaver,
		Trust:    trust,
		Policy:   sandbox.AllowAll(),
		Host:     lvm.HostMap{},
		Builtins: builtins,
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	// The base signs and pushes an extension.
	signed, err := core.Sign(hall, core.Extension{
		ID:      "hall-1/watch",
		Name:    "watch",
		Version: 1,
		Advices: []core.AdviceSpec{{
			Name:    "watch-motors",
			Kind:    core.KindCallBefore,
			Pattern: "Motor.*(..)",
			Builtin: "announce",
		}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := receiver.Install(signed, "base-1", time.Minute); err != nil {
		fmt.Println(err)
		return
	}

	// The application's join point fires through the woven advice.
	site := weaver.RegisterMethodSite(aop.MethodEntry, aop.Signature{
		Class: "Motor", Method: "rotate", Return: "void", Params: []string{"int"},
	})
	ctx := &aop.Context{Sig: site.Sig}
	if err := site.Dispatch(ctx); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("installed:", receiver.Has("watch"))
	// Output:
	// extension saw Motor.rotate
	// installed: true
}
