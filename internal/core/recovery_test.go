package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/aop"
	"repro/internal/clock"
	"repro/internal/lvm"
	"repro/internal/metrics"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/weave"
)

// newJournaledReceiver builds a receiver whose state is journalled under dir,
// trusting signer. Each call builds a fresh weaver/receiver, modelling a node
// process restart over the same state directory.
func newJournaledReceiver(t testing.TB, dir string, clk clock.Clock, signer *sign.Signer) (*Receiver, *ReceiverJournal) {
	t.Helper()
	j, err := OpenReceiverJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	trust := sign.NewTrustStore()
	trust.Trust(signer.Name, signer.PublicKey())
	builtins := NewBuiltins()
	builtins.Register("noop", func(*Env, map[string]string) (aop.Body, error) {
		return aop.BodyFunc(func(*aop.Context) error { return nil }), nil
	})
	r, err := NewReceiver(ReceiverConfig{
		NodeName: "robot1",
		Addr:     "robot1",
		Weaver:   weave.New(),
		Trust:    trust,
		Policy:   sandbox.AllowAll(),
		Clock:    clk,
		Host:     lvm.HostMap{},
		Builtins: builtins,
		Journal:  j,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, j
}

func recoveryExt(name string, version int) Extension {
	return Extension{
		ID:      "ext/" + name,
		Name:    name,
		Version: version,
		Advices: []AdviceSpec{{
			Name:    "a",
			Kind:    KindCallBefore,
			Pattern: "Motor.*(..)",
			Builtin: "noop",
		}},
	}
}

// TestReceiverRecoverPreservesLease: a node restarting within the lease
// window re-weaves the extension under the original lease ID and absolute
// deadline — no fresh grant, no deadline extension.
func TestReceiverRecoverPreservesLease(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewManual(time.Unix(1000, 0))
	signer, err := sign.NewSigner("hall-1")
	if err != nil {
		t.Fatal(err)
	}

	r1, j1 := newJournaledReceiver(t, dir, clk, signer)
	signed, err := Sign(signer, recoveryExt("policy", 1))
	if err != nil {
		t.Fatal(err)
	}
	id, err := r1.Install(signed, "base-1", 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	wantDeadline, ok := r1.Grantor().Deadline(id)
	if !ok {
		t.Fatal("no deadline for granted lease")
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash + restart 30s later: well inside the 2 min window.
	clk.Advance(30 * time.Second)
	r2, _ := newJournaledReceiver(t, dir, clk, signer)
	restored, err := r2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored = %d, want 1", restored)
	}
	if !r2.Has("policy") {
		t.Fatal("extension not re-woven")
	}
	inv := r2.Inventory()
	if len(inv) != 1 || inv[0].LeaseID != string(id) {
		t.Fatalf("inventory = %+v, want original lease %s", inv, id)
	}
	gotDeadline, ok := r2.Grantor().Deadline(id)
	if !ok || !gotDeadline.Equal(wantDeadline) {
		t.Fatalf("deadline = %v (%v), want original %v", gotDeadline, ok, wantDeadline)
	}
	// The restored lease renews normally under its original handle.
	if err := r2.Renew(id, time.Minute); err != nil {
		t.Fatal(err)
	}
}

// TestReceiverRecoverExpiresLapsedLease: a crash longer than the lease window
// restores the extension already expired — Recover withdraws it immediately
// instead of silently re-opening the lease, so the installed set converges to
// what an uninterrupted node would hold.
func TestReceiverRecoverExpiresLapsedLease(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewManual(time.Unix(1000, 0))
	signer, err := sign.NewSigner("hall-1")
	if err != nil {
		t.Fatal(err)
	}

	r1, j1 := newJournaledReceiver(t, dir, clk, signer)
	signed, err := Sign(signer, recoveryExt("policy", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Install(signed, "base-1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Down for five minutes: the 10s lease lapsed long ago.
	clk.Advance(5 * time.Minute)
	r2, j2 := newJournaledReceiver(t, dir, clk, signer)
	restored, err := r2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored = %d, want 1", restored)
	}
	if r2.Has("policy") {
		t.Fatal("lapsed lease survived recovery")
	}
	// The expiry also cleaned the journal: a second restart recovers nothing.
	recs, err := j2.Exts()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("journal still holds %d records after expiry", len(recs))
	}
}

// newRecoveryBase builds a base over fabric whose state is journalled under
// dir (empty string disables journalling).
func newRecoveryBase(t testing.TB, fabric *transport.InProc, clk clock.Clock, signer *sign.Signer, dir string, breaker *transport.BreakerSet) (*Base, *metrics.Registry) {
	t.Helper()
	var j *BaseJournal
	if dir != "" {
		var err error
		j, err = OpenBaseJournal(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { j.Close() })
	}
	b, err := NewBase(BaseConfig{
		Name:          "hall-1",
		Addr:          "base-1",
		Caller:        fabric.Node("base-1"),
		Signer:        signer,
		Clock:         clk,
		LeaseDur:      time.Minute,
		RenewFraction: 0.5,
		CallTimeout:   500 * time.Millisecond,
		Journal:       j,
		Breaker:       breaker,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	reg := metrics.New()
	b.Instrument(reg)
	return b, reg
}

// serveReceiver wires a journal-less receiver onto the fabric and returns it
// with its stop function.
func serveReceiver(t testing.TB, fabric *transport.InProc, clk clock.Clock, signer *sign.Signer) (*Receiver, *metrics.Registry, func()) {
	t.Helper()
	trust := sign.NewTrustStore()
	trust.Trust(signer.Name, signer.PublicKey())
	builtins := NewBuiltins()
	builtins.Register("noop", func(*Env, map[string]string) (aop.Body, error) {
		return aop.BodyFunc(func(*aop.Context) error { return nil }), nil
	})
	r, err := NewReceiver(ReceiverConfig{
		NodeName: "robot1",
		Addr:     "robot1",
		Weaver:   weave.New(),
		Trust:    trust,
		Policy:   sandbox.AllowAll(),
		Clock:    clk,
		Host:     lvm.HostMap{},
		Builtins: builtins,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	r.Instrument(reg)
	mux := transport.NewMux()
	r.ServeOn(mux)
	stop, err := fabric.Serve("robot1", mux)
	if err != nil {
		t.Fatal(err)
	}
	return r, reg, stop
}

// TestBaseRecoverResumesRenewals: a restarted base replays its journal and
// keeps the node's existing lease alive — renewals continue under the
// original lease ID with no re-push.
func TestBaseRecoverResumesRenewals(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewManual(time.Unix(1000, 0))
	fabric := transport.NewInProc()
	signer, err := sign.NewSigner("hall-1")
	if err != nil {
		t.Fatal(err)
	}
	recv, recvReg, stop := serveReceiver(t, fabric, clk, signer)
	defer stop()

	b1, _ := newRecoveryBase(t, fabric, clk, signer, dir, nil)
	if err := b1.AddExtension(recoveryExt("policy", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b1.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}
	if !recv.Has("policy") {
		t.Fatal("extension not installed")
	}
	origInv := recv.Inventory()
	b1.Close() // graceful shutdown keeps the journal

	// Restart: a fresh base over the same state directory.
	clk.Advance(10 * time.Second)
	b2, _ := newRecoveryBase(t, fabric, clk, signer, dir, nil)
	if err := b2.AddExtension(recoveryExt("policy", 1)); err != nil {
		t.Fatal(err)
	}
	restored, err := b2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored = %d, want 1", restored)
	}
	if got := b2.Adapted(); len(got) != 1 || got[0] != "robot1" {
		t.Fatalf("adapted after recovery = %v", got)
	}

	// Drive past the original deadline: the resumed renewer must have kept
	// the lease alive (the receiver counts renewals, not installs).
	simnet.Advance(clk, 2*time.Minute, 5*time.Second)
	if !recv.Has("policy") {
		t.Fatal("lease lapsed after base recovery")
	}
	if got := recvReg.Snapshot().Counters["ext.installs"]; got != 1 {
		t.Fatalf("ext.installs = %d, want 1 (recovery must not re-push)", got)
	}
	if got := recvReg.Snapshot().Counters["lease.renewals"]; got == 0 {
		t.Fatal("no renewals after recovery")
	}
	nowInv := recv.Inventory()
	if len(nowInv) != 1 || nowInv[0].LeaseID != origInv[0].LeaseID {
		t.Fatalf("lease changed across base recovery: %+v -> %+v", origInv, nowInv)
	}
}

// TestReconcileRepairsDrift: one anti-entropy round re-pushes a missing
// extension and revokes an orphan that survived a missed revoke, then the
// next round reports in-sync.
func TestReconcileRepairsDrift(t *testing.T) {
	clk := clock.NewManual(time.Unix(1000, 0))
	fabric := transport.NewInProc()
	signer, err := sign.NewSigner("hall-1")
	if err != nil {
		t.Fatal(err)
	}
	recv, _, stop := serveReceiver(t, fabric, clk, signer)
	defer stop()

	b, reg := newRecoveryBase(t, fabric, clk, signer, "", nil)
	if err := b.AddExtension(recoveryExt("policy", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}

	// Drift: the node lost "policy" (e.g. local wipe) and still holds
	// "stale", whose revoke the partition swallowed.
	staleSigned, err := Sign(signer, recoveryExt("stale", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recv.Install(staleSigned, "base-1", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := recv.Withdraw("policy"); err != nil {
		t.Fatal(err)
	}

	res := b.ReconcileNow(context.Background())
	r := res["robot1"]
	if len(r.Repushed) != 1 || r.Repushed[0] != "policy" {
		t.Fatalf("repushed = %v, want [policy]", r.Repushed)
	}
	if len(r.Revoked) != 1 || r.Revoked[0] != "stale" {
		t.Fatalf("revoked = %v, want [stale]", r.Revoked)
	}
	if !recv.Has("policy") || recv.Has("stale") {
		t.Fatalf("post-reconcile state: policy=%v stale=%v", recv.Has("policy"), recv.Has("stale"))
	}
	snap := reg.Snapshot().Counters
	if snap["base.reconcile_repushes"] != 1 || snap["base.reconcile_orphans"] != 1 {
		t.Fatalf("drift counters = %d/%d, want 1/1",
			snap["base.reconcile_repushes"], snap["base.reconcile_orphans"])
	}

	// Second round: nothing left to repair.
	res = b.ReconcileNow(context.Background())
	if r := res["robot1"]; !r.InSync {
		t.Fatalf("second round not in sync: %+v", r)
	}
	st := b.Status()
	if len(st.Nodes) != 1 || st.Nodes[0].State != "adapted" || !st.Nodes[0].LastReconcile.InSync {
		t.Fatalf("status = %+v", st.Nodes)
	}
	if st.Drift.Repushes != 1 || st.Drift.Orphans != 1 || st.Drift.Rounds != 2 {
		t.Fatalf("drift = %+v", st.Drift)
	}
}

// TestDegradedNodeReconciledNotRepushed: when renewals fail with the node's
// circuit open, the base parks the node as degraded; while degraded,
// reconcile attempts fast-fail locally (no re-push storm), and when the node
// answers again its live lease is adopted — not re-pushed.
func TestDegradedNodeReconciledNotRepushed(t *testing.T) {
	clk := clock.NewManual(time.Unix(1000, 0))
	fabric := transport.NewInProc()
	signer, err := sign.NewSigner("hall-1")
	if err != nil {
		t.Fatal(err)
	}
	recv, recvReg, stop := serveReceiver(t, fabric, clk, signer)

	breaker := transport.NewBreakerSet(1, transport.BreakerConfig{
		Threshold: 1,
		Cooldown:  5 * time.Second,
		Jitter:    0,
		Clock:     clk,
	})
	b, reg := newRecoveryBase(t, fabric, clk, signer, "", breaker)
	if err := b.AddExtension(recoveryExt("policy", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}

	// Let the renewer register its wake-up, then drop the node off the
	// network: the renewal at t=30s fails, trips the breaker (threshold 1)
	// and the base degrades the node.
	waitUntil(t, "renewer schedule", func() bool { return clk.PendingTimers() >= 1 })
	stop()
	simnet.Advance(clk, 30*time.Second, 5*time.Second)
	waitUntil(t, "degradation", func() bool { return len(b.Degraded()) == 1 })
	if got := b.Adapted(); len(got) != 0 {
		t.Fatalf("adapted = %v, want none while degraded", got)
	}
	if got := reg.Snapshot().Counters["base.departures"]; got != 0 {
		t.Fatalf("degradation also counted as departure (%d)", got)
	}

	// While the circuit is open, a reconcile round fast-fails locally: the
	// breaker answers, not the network.
	installsBefore := recvReg.Snapshot().Counters["ext.installs"]
	res := b.ReconcileNow(context.Background())
	if r := res["robot1"]; r.Err == "" {
		t.Fatalf("reconcile against open circuit succeeded: %+v", r)
	}
	if got := reg.Snapshot().Counters["transport.breaker_fastfails"]; got == 0 {
		t.Fatal("reconcile reached the network instead of fast-failing")
	}

	// The node comes back; after the cooldown the reconcile probe lands,
	// promotes the node and adopts its still-live lease (LeaseDur is 1 min,
	// only ~36s passed) instead of re-pushing.
	mux := transport.NewMux()
	recv.ServeOn(mux)
	stop2, err := fabric.Serve("robot1", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	clk.Advance(6 * time.Second)
	res = b.ReconcileNow(context.Background())
	r := res["robot1"]
	if !r.Promoted {
		t.Fatalf("node not promoted: %+v", r)
	}
	if len(r.Adopted) != 1 || r.Adopted[0] != "policy" {
		t.Fatalf("adopted = %v, want [policy]", r.Adopted)
	}
	if len(r.Repushed) != 0 {
		t.Fatalf("repushed = %v, want none (lease was live)", r.Repushed)
	}
	if got := recvReg.Snapshot().Counters["ext.installs"]; got != installsBefore {
		t.Fatalf("ext.installs moved %d -> %d: reconciliation re-pushed", installsBefore, got)
	}
	if got := b.Adapted(); len(got) != 1 {
		t.Fatalf("adapted = %v after promotion", got)
	}
	if got := b.Degraded(); len(got) != 0 {
		t.Fatalf("degraded = %v after promotion", got)
	}
	// And the adopted lease is kept alive from here on.
	simnet.Advance(clk, 2*time.Minute, 5*time.Second)
	if !recv.Has("policy") {
		t.Fatal("adopted lease lapsed")
	}
}

// TestReceiverRecoverSkipsUntrustedRecord: a journalled extension that no
// longer verifies (the base rotated its signing key across a restart, so the
// trust store only holds the new key) is rejected and dropped — never fatal.
// The node comes up empty and reconciliation re-pushes current extensions.
func TestReceiverRecoverSkipsUntrustedRecord(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewManual(time.Unix(1000, 0))
	oldSigner, err := sign.NewSigner("hall-1")
	if err != nil {
		t.Fatal(err)
	}

	r1, j1 := newJournaledReceiver(t, dir, clk, oldSigner)
	signed, err := Sign(oldSigner, recoveryExt("policy", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Install(signed, "base-1", time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// The base restarted and minted a fresh key under the same name: the
	// node's trust store now holds only the new key.
	newSigner, err := sign.NewSigner("hall-1")
	if err != nil {
		t.Fatal(err)
	}
	r2, j2 := newJournaledReceiver(t, dir, clk, newSigner)
	restored, err := r2.Recover()
	if err != nil {
		t.Fatalf("per-record verification failure must not be fatal: %v", err)
	}
	if restored != 0 {
		t.Fatalf("restored = %d, want 0", restored)
	}
	if got := r2.Installed(); len(got) != 0 {
		t.Fatalf("installed after recover = %+v, want none", got)
	}
	recs, err := j2.Exts()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("journal still holds %d record(s); rejected records must be dropped", len(recs))
	}
}
