package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/lease"
	"repro/internal/transport"
)

// TestReceiverRPCSurface exercises every midas.* method over a real
// transport, including the TCP fabric.
func TestReceiverRPCSurface(t *testing.T) {
	n := newTestNode(t)
	mux := transport.NewMux()
	n.receiver.ServeOn(mux)
	srv, err := transport.ServeTCP("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	caller := transport.NewTCPCaller()
	defer caller.Close()
	ctx := context.Background()

	signed, err := Sign(n.signer, builtinExt("remote-ext", 1))
	if err != nil {
		t.Fatal(err)
	}
	installResp, err := transport.Invoke[InstallReq, InstallResp](ctx, caller, srv.Addr(), MethodInstall, InstallReq{
		Signed:    signed,
		BaseAddr:  "base-1",
		DurMillis: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if installResp.LeaseID == "" {
		t.Fatal("no lease over RPC")
	}

	if _, err := transport.Invoke[RenewExtReq, RenewExtResp](ctx, caller, srv.Addr(), MethodRenewE, RenewExtReq{
		LeaseID:   installResp.LeaseID,
		DurMillis: 60_000,
	}); err != nil {
		t.Fatal(err)
	}

	listResp, err := transport.Invoke[EmptyResp, ListResp](ctx, caller, srv.Addr(), MethodList, EmptyResp{})
	if err != nil {
		t.Fatal(err)
	}
	if len(listResp.Extensions) != 1 || listResp.Extensions[0].Name != "remote-ext" {
		t.Fatalf("list = %+v", listResp.Extensions)
	}

	if _, err := transport.Invoke[RevokeReq, EmptyResp](ctx, caller, srv.Addr(), MethodRevoke, RevokeReq{Name: "remote-ext"}); err != nil {
		t.Fatal(err)
	}
	if n.receiver.Has("remote-ext") {
		t.Fatal("revoked extension still installed")
	}

	// Renewing the cancelled lease now fails remotely.
	_, err = transport.Invoke[RenewExtReq, RenewExtResp](ctx, caller, srv.Addr(), MethodRenewE, RenewExtReq{
		LeaseID:   installResp.LeaseID,
		DurMillis: 60_000,
	})
	if err == nil {
		t.Fatal("renew of revoked lease should fail")
	}
}

func TestReceiverRenewUnknownLease(t *testing.T) {
	n := newTestNode(t)
	if err := n.receiver.Renew(lease.ID("ghost"), time.Second); err == nil {
		t.Fatal("want error")
	}
}

func TestReceiverWithdrawUnknown(t *testing.T) {
	n := newTestNode(t)
	if err := n.receiver.Withdraw("ghost"); err == nil {
		t.Fatal("want error")
	}
}

func TestNewReceiverValidation(t *testing.T) {
	if _, err := NewReceiver(ReceiverConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestNewBaseValidation(t *testing.T) {
	if _, err := NewBase(BaseConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
