package core

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/sign"
	"repro/internal/tuplespace"
)

func TestSpaceDistribution(t *testing.T) {
	n := newTestNode(t)
	clk := clock.NewManual(time.Unix(0, 0))
	space := tuplespace.New(clk)

	if _, err := PublishExtension(space, n.signer, builtinExt("monitor", 1), "base-1", time.Minute); err != nil {
		t.Fatal(err)
	}
	listener := &SpaceListener{Space: space, Receiver: n.receiver}
	listener.Scan(30 * time.Second)
	if !n.receiver.Has("monitor") {
		t.Fatal("extension from space not installed")
	}
	infos := n.receiver.Installed()
	if infos[0].BaseAddr != "base-1" {
		t.Errorf("base addr = %s", infos[0].BaseAddr)
	}

	// Repeated scans renew rather than reinstall.
	listener.Scan(30 * time.Second)
	events := 0
	for _, a := range n.receiver.Activity() {
		if a.Event == "install" {
			events++
		}
	}
	if events != 1 {
		t.Errorf("install events = %d, want 1", events)
	}
}

func TestSpaceDistributionLocality(t *testing.T) {
	n := newTestNode(t)
	space := tuplespace.New(n.clk)
	if _, err := PublishExtension(space, n.signer, builtinExt("monitor", 1), "base-1", 20*time.Second); err != nil {
		t.Fatal(err)
	}
	listener := &SpaceListener{Space: space, Receiver: n.receiver}
	listener.Scan(10 * time.Second)
	if !n.receiver.Has("monitor") {
		t.Fatal("not installed")
	}

	// The base stops renewing the tuple; it expires from the space, the
	// listener stops renewing locally, and the receiver withdraws.
	n.clk.Advance(25 * time.Second)
	space.ExpireNow()
	if space.Len() != 0 {
		t.Fatal("tuple survived")
	}
	listener.Scan(10 * time.Second) // nothing to renew anymore
	n.clk.Advance(11 * time.Second)
	n.receiver.Grantor().ExpireNow()
	if n.receiver.Has("monitor") {
		t.Fatal("extension survived tuple disappearance")
	}
}

func TestSpaceDistributionVersionUpgrade(t *testing.T) {
	n := newTestNode(t)
	space := tuplespace.New(n.clk)
	listener := &SpaceListener{Space: space, Receiver: n.receiver}

	if _, err := PublishExtension(space, n.signer, builtinExt("monitor", 1), "base-1", time.Minute); err != nil {
		t.Fatal(err)
	}
	listener.Scan(time.Minute)
	if _, err := PublishExtension(space, n.signer, builtinExt("monitor", 2), "base-1", time.Minute); err != nil {
		t.Fatal(err)
	}
	listener.Scan(time.Minute)
	infos := n.receiver.Installed()
	if len(infos) != 1 || infos[0].Version != 2 {
		t.Errorf("Installed = %+v", infos)
	}
}

func TestSpaceDistributionUntrusted(t *testing.T) {
	n := newTestNode(t)
	space := tuplespace.New(n.clk)
	mallory, err := sign.NewSigner("mallory")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PublishExtension(space, mallory, builtinExt("evil", 1), "base-x", time.Minute); err != nil {
		t.Fatal(err)
	}
	listener := &SpaceListener{Space: space, Receiver: n.receiver}
	listener.Scan(time.Minute)
	if n.receiver.Has("evil") {
		t.Fatal("untrusted extension installed from space")
	}
}
