package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/lease"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/registry"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"

	"repro/internal/event"
)

// RPC method names served by a base.
const (
	MethodBasePost      = "base.post"      // monitoring extensions post records here
	MethodBaseQuery     = "base.query"     // clients query the movement database
	MethodBaseOnService = "base.onservice" // lookup watcher callback
	MethodBaseRoam      = "base.roam"      // roaming hint from a neighbour base
)

// Wire types for the base RPC surface.
type (
	// PostReq delivers one monitoring record.
	PostReq struct {
		Record store.Record
	}
	// RoamReq hints that a node departed a neighbour's area.
	RoamReq struct {
		NodeID   string
		NodeAddr string
	}
	// QueryReq filters the base's movement database.
	QueryReq struct {
		Filter store.Filter
	}
	// QueryResp returns matching records.
	QueryResp struct {
		Records []store.Record
	}
)

// BaseConfig assembles an extension base.
type BaseConfig struct {
	Name   string
	Addr   string // transport address the base serves on
	Caller transport.Caller
	Signer *sign.Signer
	Clock  clock.Clock
	Store  *store.Store // optional sink for monitoring records

	// LeaseDur is the lease granted per pushed extension (default 10s);
	// RenewFraction controls when renewals fire (default 0.5); RenewRetries
	// retries failed renewals within the lease before declaring the node
	// departed (for lossy wireless links; default 0).
	LeaseDur      time.Duration
	RenewFraction float64
	RenewRetries  int
	// CallTimeout bounds each RPC (default 2s). With a Policy set it bounds
	// the whole retried call, so it should cover the policy's backoff budget.
	CallTimeout time.Duration
	// Policy, when set, routes every outgoing RPC (pushes, renewals, revokes,
	// roaming hints) through retry-with-backoff. Retried installs/revokes are
	// safe: the receiver wire surface is idempotent.
	Policy *transport.Policy
	// Breaker, when set, wraps the outgoing caller (outside Policy, so an open
	// circuit fast-fails before any retry budget is spent) with per-node
	// circuit breaking. A node whose circuit is open when its renewals fail is
	// marked degraded and reconciled — not blindly re-pushed — when it
	// returns.
	Breaker *transport.BreakerSet
	// Journal, when set, checkpoints the base's distribution state (adapted
	// nodes, pushed extensions, lease deadlines) so Recover can resume
	// renewals after a crash.
	Journal *BaseJournal
	// ReconcileEvery, when > 0, runs the anti-entropy reconciler periodically:
	// every adapted or degraded node's inventory is diffed against the policy
	// set, missing extensions re-pushed, orphans revoked and receiver lease
	// deadlines adopted.
	ReconcileEvery time.Duration
	// Admission, when set, is the capability policy extensions must satisfy
	// at admission time: static analysis infers the exact capability set each
	// extension's advice can exercise, and an extension whose inferred demand
	// the policy refuses is rejected by AddExtension/ReplaceExtension — before
	// it is ever signed, pushed or woven anywhere. Nil skips the policy check
	// but still rejects extensions using capabilities they do not declare.
	Admission sandbox.Policy
	// AdmissionFlows, when non-nil, is the allowlist of information-flow
	// rules ("source->sink") the base operator permits: an extension whose
	// bytecode exercises a flow outside the list is rejected at admission,
	// counted by base.admission_flow_rejected. Nil allows any flow the
	// extension declares; flows the bytecode exercises but the descriptor
	// does not declare are always rejected, allowlist or not.
	AdmissionFlows []string
	// Shards splits the base's node table by consistent hash so adapt,
	// renewal and reconcile traffic for different nodes proceeds under
	// different locks, and reconcile rounds run one goroutine per shard
	// (default 8).
	Shards int
	// RenewTick is the renewal timer wheel's granularity (default
	// LeaseDur*RenewFraction/4, so a fresh lease's first renewal lands on its
	// familiar window*fraction instant). One wheel goroutine plus RenewWorkers
	// workers replace the former goroutine-per-lease renewers.
	RenewTick time.Duration
	// RenewBatch caps how many of a node's due leases coalesce into one
	// batched midas.renewBatch RPC (default 64). RenewWorkers bounds
	// concurrent renew RPCs (default 1, which keeps traced scenarios
	// deterministic; fleet-scale deployments raise it).
	RenewBatch   int
	RenewWorkers int
}

// BaseActivity is one entry of the base's distribution log (§3.2: each base
// keeps track of what nodes were adapted, at what point in time).
type BaseActivity struct {
	AtMillis int64
	Event    string // "adapt", "push", "depart", "revoke", "roam-hint", "roam-adopt", "degrade", "recover", "reconcile"
	Node     string
	Ext      string
	Detail   string
}

type adaptedNode struct {
	id   string
	addr string
	// spanCtxs remembers, per extension, the span under which the push
	// succeeded, so later renewals and revokes join the install's trace.
	spanCtxs map[string]trace.SpanContext
	// grants mirrors the lease state per pushed extension; it is what the
	// journal checkpoints, so deadlines are absolute. An extension present
	// here is being kept alive by the base's renewal scheduler.
	grants map[string]grantInfo
	// legacyRenew/legacyApply remember that this peer answered a batched RPC
	// with ErrNoMethod: an old receiver without the batch surface, served
	// singleton RPCs from then on.
	legacyRenew bool
	legacyApply bool
}

// grantInfo is the base's view of one pushed extension's lease.
type grantInfo struct {
	version  int
	leaseID  lease.ID
	dur      time.Duration
	deadline time.Time
}

func newAdaptedNode(id, addr string) *adaptedNode {
	return &adaptedNode{
		id:       id,
		addr:     addr,
		spanCtxs: make(map[string]trace.SpanContext),
		grants:   make(map[string]grantInfo),
	}
}

// Base is a MIDAS extension base: it holds the extension set of one
// environment, adapts arriving nodes, keeps the distributed extensions alive
// and notices departures through failing renewals.
type Base struct {
	cfg    BaseConfig
	caller transport.Caller // cfg.Caller, wrapped by cfg.Policy when set

	// nodes shards the adapted/degraded node state; sched keeps every pushed
	// extension's lease alive on one timer wheel. closed is atomic so shard
	// paths check it without the config lock. Lock order: a shard's mu may be
	// held while taking b.mu or a scheduler lock, never the reverse.
	nodes  *nodeTable
	sched  *lease.Scheduler
	closed atomic.Bool

	mu         sync.Mutex
	extensions []Extension
	// reports holds the admission analysis of every accepted extension, by
	// name; served over base.analyze and consulted by midasctl analyze.
	reports       map[string]AnalysisReport
	signed        map[string]SignedExtension // push signature cache, name@version
	lastReconcile map[string]ReconcileResult
	stats         DriftCounters
	neighbors     []string
	activity      []BaseActivity
	reg           *metrics.Registry
	m             baseMetrics
	tracer        *trace.Tracer

	reconcileStop chan struct{}
	reconcileDone chan struct{}

	departures chan string
	onDepart   func(nodeAddr string)

	// fleet merges the observability deltas nodes piggyback on renewBatch
	// responses (see fleet.go). Zero value ready; own lock, no ordering ties.
	fleet fleetView

	// overload, when set, supplies the overload-control status rendered in
	// FleetStatus. Atomic pointer so SetOverload needs no lock-order slot.
	overload atomic.Pointer[func() overload.Snapshot]
}

// baseMetrics counts the distribution side of adaptation, mirroring the
// distribution log; all fields are nil-safe no-ops until Instrument.
type baseMetrics struct {
	adapts          *metrics.Counter
	pushes          *metrics.Counter
	pushErrors      *metrics.Counter
	admRejected     *metrics.Counter
	admFlowRejected *metrics.Counter
	departures      *metrics.Counter
	revokes         *metrics.Counter
	roamHints       *metrics.Counter
	degrades        *metrics.Counter
	recovers        *metrics.Counter
	journalErrs     *metrics.Counter
	// Reconciliation drift counters: how much anti-entropy work each round
	// found (re-pushed missing extensions, revoked orphans, adopted leases).
	reconRounds   *metrics.Counter
	reconRepushes *metrics.Counter
	reconOrphans  *metrics.Counter
	reconAdopts   *metrics.Counter
	reconErrors   *metrics.Counter
	// Batch-surface counters: batched renew RPCs (and the leases they
	// carried), batched apply RPCs, and fallbacks to singleton RPCs for old
	// peers without the batch surface.
	renewBatches     *metrics.Counter
	renewBatchLeases *metrics.Counter
	pushBatches      *metrics.Counter
	batchFallbacks   *metrics.Counter
	adapted          *metrics.Gauge
	degraded         *metrics.Gauge
}

// Instrument records node adaptations, extension pushes (and push failures),
// departures, revocations and roaming hints in reg, plus the adapted-node
// gauge. Lease renewers started for pushed extensions join the same registry.
// A nil reg is a no-op.
func (b *Base) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	b.sched.Instrument(reg)
	nAdapted, nDegraded := b.nodes.counts()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reg = reg
	b.m = baseMetrics{
		adapts:           reg.Counter("base.adapts"),
		pushes:           reg.Counter("base.pushes"),
		pushErrors:       reg.Counter("base.push_errors"),
		admRejected:      reg.Counter("base.admission_rejected"),
		admFlowRejected:  reg.Counter("base.admission_flow_rejected"),
		departures:       reg.Counter("base.departures"),
		revokes:          reg.Counter("base.revokes"),
		roamHints:        reg.Counter("base.roam_hints"),
		degrades:         reg.Counter("base.degrades"),
		recovers:         reg.Counter("base.recovers"),
		journalErrs:      reg.Counter("base.journal_errors"),
		reconRounds:      reg.Counter("base.reconcile_rounds"),
		reconRepushes:    reg.Counter("base.reconcile_repushes"),
		reconOrphans:     reg.Counter("base.reconcile_orphans"),
		reconAdopts:      reg.Counter("base.reconcile_adopts"),
		reconErrors:      reg.Counter("base.reconcile_errors"),
		renewBatches:     reg.Counter("base.renew_batch"),
		renewBatchLeases: reg.Counter("base.renew_batch_leases"),
		pushBatches:      reg.Counter("base.push_batch"),
		batchFallbacks:   reg.Counter("base.batch_fallbacks"),
		adapted:          reg.Gauge("base.adapted_nodes"),
		degraded:         reg.Gauge("base.degraded_nodes"),
	}
	b.m.adapted.Set(int64(nAdapted))
	b.m.degraded.Set(int64(nDegraded))
	b.cfg.Breaker.Instrument(reg)
	// Every outbound RPC gains per-method RED instruments (rpc.client.*), and
	// an instrumented base starts asking nodes for piggybacked fleet deltas.
	b.caller = transport.REDCalls(b.caller, reg)
}

// metricsRef snapshots the metric handles under the config lock; every field
// stays a nil-safe no-op until Instrument.
func (b *Base) metricsRef() baseMetrics {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.m
}

// renewRefs snapshots everything the renewal path needs from the config lock
// in one acquisition — metric handles, tracer, and whether the base collects
// fleet observability (only an instrumented base asks nodes for piggybacked
// deltas, so un-instrumented deployments keep byte-identical renewal
// traffic). The renewal window takes this per due batch, so one lock
// round-trip instead of three is measurable at 100k nodes.
func (b *Base) renewRefs() (baseMetrics, *trace.Tracer, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.m, b.tracer, b.reg != nil
}

// NewBase builds a base.
func NewBase(cfg BaseConfig) (*Base, error) {
	if cfg.Caller == nil || cfg.Signer == nil {
		return nil, fmt.Errorf("core: base needs Caller and Signer")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.LeaseDur <= 0 {
		cfg.LeaseDur = 10 * time.Second
	}
	if cfg.RenewFraction <= 0 || cfg.RenewFraction >= 1 {
		cfg.RenewFraction = 0.5
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.RenewTick <= 0 {
		// A quarter of the renewal window: a fresh lease's first renewal
		// quantises to exactly window*fraction (4 ticks), and the retry gap
		// for small retry counts stays inside the remaining slack.
		cfg.RenewTick = time.Duration(float64(cfg.LeaseDur) * cfg.RenewFraction / 4)
	}
	if cfg.RenewTick < time.Millisecond {
		cfg.RenewTick = time.Millisecond
	}
	b := &Base{
		cfg: cfg,
		// nil Policy / nil Breaker leave the caller bare. The breaker wraps
		// outermost so an open circuit fast-fails before the retry loop runs.
		caller:        cfg.Breaker.Wrap(cfg.Policy.Wrap(cfg.Caller)),
		nodes:         newNodeTable(cfg.Shards),
		reports:       make(map[string]AnalysisReport),
		signed:        make(map[string]SignedExtension),
		lastReconcile: make(map[string]ReconcileResult),
	}
	b.sched = lease.NewScheduler(cfg.Clock, lease.SchedulerConfig{
		Tick:     cfg.RenewTick,
		Fraction: cfg.RenewFraction,
		Retries:  cfg.RenewRetries,
		MaxBatch: cfg.RenewBatch,
		Workers:  cfg.RenewWorkers,
		Renew:    b.renewNodeBatch,
		OnRenew:  b.noteRenewal,
		OnNodeFail: func(node string, err error) {
			// Renewals failed for good: the node is out of reach. Handle the
			// departure asynchronously so a slow roam hint never stalls the
			// renewal workers serving other nodes.
			go b.nodeDeparted(node)
		},
	})
	if cfg.ReconcileEvery > 0 {
		b.reconcileStop = make(chan struct{})
		b.reconcileDone = make(chan struct{})
		go b.reconcileLoop()
	}
	return b, nil
}

// ScheduledRenewals reports how many leases the renewal scheduler is keeping
// alive — O(shards + wheels) goroutines do that work, not O(leases).
func (b *Base) ScheduledRenewals() int { return b.sched.Len() }

// RenewalsQuiesced reports whether the renewal scheduler has fully processed
// every elapsed wheel tick with no renew calls queued or in flight.
// Deterministic fleet tests use it as a barrier between manual clock steps.
func (b *Base) RenewalsQuiesced() bool { return b.sched.Quiesced() }

// RenewalBacklog reports renewals due but not yet completed — queued plus in
// flight. A persistently non-zero backlog means the renewal workers are not
// keeping up with the wheel; /healthz exposes it for exactly that reason.
func (b *Base) RenewalBacklog() int { return b.sched.Backlog() }

// signedFor returns ext signed by this base, caching per name@version: a
// fleet-scale adapt round signs each extension once, not once per node.
func (b *Base) signedFor(ext Extension) (SignedExtension, error) {
	key := fmt.Sprintf("%s@%d", ext.Name, ext.Version)
	b.mu.Lock()
	s, ok := b.signed[key]
	b.mu.Unlock()
	if ok {
		return s, nil
	}
	s, err := Sign(b.cfg.Signer, ext)
	if err != nil {
		return SignedExtension{}, err
	}
	b.mu.Lock()
	b.signed[key] = s
	b.mu.Unlock()
	return s, nil
}

// Signer returns the base's signing identity (receivers must trust its
// public key).
func (b *Base) Signer() *sign.Signer { return b.cfg.Signer }

// Trace records the base's lifecycle (adapt, push, renew, revoke, depart) as
// spans in tr, wraps the base's outbound caller so calls carry trace context
// across the fabric, and — when a Policy is configured — makes each retry
// attempt a child span. Call before the base starts serving; a nil tr is a
// no-op.
func (b *Base) Trace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	b.mu.Lock()
	b.tracer = tr
	b.mu.Unlock()
	b.caller = transport.TraceCalls(b.caller, tr)
	b.cfg.Policy.Trace(tr)
	b.cfg.Breaker.Trace(tr)
}

func (b *Base) traceRef() *trace.Tracer {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tracer
}

// OnDepart registers a callback invoked when a node's lease renewals fail.
func (b *Base) OnDepart(fn func(nodeAddr string)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onDepart = fn
}

// AddNeighbor registers a neighbour base that receives roaming hints when
// nodes depart this base's area.
func (b *Base) AddNeighbor(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.neighbors = append(b.neighbors, addr)
}

// admit runs the static admission pipeline over ext: analyze (typed
// verification, capability inference, cost bounds), then check the inferred
// demand against the declaration and the base's Admission policy. A rejection
// increments base.admission_rejected; an accepted extension's report is
// stored for the base.analyze RPC. The whole decision is one traced
// "base.admit" span.
func (b *Base) admit(ext Extension) error {
	_, sp := b.traceRef().StartSpan(context.Background(), "base.admit")
	sp.Tag("ext", ext.Name)
	err := func() error {
		rep, err := AnalyzeExtension(ext)
		if err != nil {
			return err
		}
		sp.Annotatef("inferred caps %v flows %v", rep.Caps, rep.Flows)
		if err := CheckAdmission(ext, rep, b.cfg.Admission, b.cfg.AdmissionFlows, b.cfg.Signer.Name); err != nil {
			return err
		}
		b.mu.Lock()
		b.reports[ext.Name] = *rep
		b.mu.Unlock()
		return nil
	}()
	sp.End(err)
	if err != nil {
		var fe *FlowError
		isFlow := errors.As(err, &fe)
		b.mu.Lock()
		b.m.admRejected.Inc()
		if isFlow {
			b.m.admFlowRejected.Inc()
		}
		b.mu.Unlock()
		b.log("admit-reject", "", ext.Name, err.Error())
	}
	return err
}

// AnalysisFor returns the stored admission report of a policy-set extension.
func (b *Base) AnalysisFor(name string) (AnalysisReport, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rep, ok := b.reports[name]
	return rep, ok
}

// AddExtension analyses ext, admits it against the base's admission policy,
// adds it to the policy set and pushes it to every currently adapted node. An
// extension whose inferred capability demand exceeds its declaration or the
// admission policy never gets signed or pushed.
func (b *Base) AddExtension(ext Extension) error {
	if err := ext.Validate(); err != nil {
		return err
	}
	if err := b.admit(ext); err != nil {
		return err
	}
	b.mu.Lock()
	for _, e := range b.extensions {
		if e.Name == ext.Name {
			b.mu.Unlock()
			return fmt.Errorf("core: base already has extension %q (use ReplaceExtension)", ext.Name)
		}
	}
	b.extensions = append(b.extensions, ext)
	b.mu.Unlock()

	b.pushToAllNodes(ext)
	return nil
}

// pushToAllNodes distributes one extension to every adapted node, one worker
// goroutine per shard — an adapt round parallelises across shards instead of
// serialising under a global lock.
func (b *Base) pushToAllNodes(ext Extension) {
	var wg sync.WaitGroup
	for i := range b.nodes.shards {
		s := &b.nodes.shards[i]
		s.mu.Lock()
		nodes := make([]*adaptedNode, 0, len(s.adapted))
		for _, n := range s.adapted {
			nodes = append(nodes, n)
		}
		s.mu.Unlock()
		if len(nodes) == 0 {
			continue
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a].addr < nodes[b].addr })
		wg.Add(1)
		go func(nodes []*adaptedNode) {
			defer wg.Done()
			for _, n := range nodes {
				if err := b.pushExtension(context.Background(), n, ext); err != nil {
					b.log("push", n.id, ext.Name, "failed: "+err.Error())
				}
			}
		}(nodes)
	}
	wg.Wait()
}

// ReplaceExtension swaps in a newer version of an existing extension and
// pushes it to every adapted node (policy evolution, §3.2).
func (b *Base) ReplaceExtension(ext Extension) error {
	if err := ext.Validate(); err != nil {
		return err
	}
	if err := b.admit(ext); err != nil {
		return err
	}
	b.mu.Lock()
	found := false
	for i, e := range b.extensions {
		if e.Name == ext.Name {
			if ext.Version <= e.Version {
				b.mu.Unlock()
				return fmt.Errorf("core: replacement of %q needs version > %d", ext.Name, e.Version)
			}
			b.extensions[i] = ext
			found = true
			break
		}
	}
	if !found {
		b.mu.Unlock()
		return fmt.Errorf("core: base has no extension %q", ext.Name)
	}
	b.mu.Unlock()

	b.pushToAllNodes(ext)
	return nil
}

// RemoveExtension drops ext from the policy set and revokes it from all
// adapted nodes.
func (b *Base) RemoveExtension(name string) error {
	b.mu.Lock()
	idx := -1
	for i, e := range b.extensions {
		if e.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		b.mu.Unlock()
		return fmt.Errorf("core: base has no extension %q", name)
	}
	b.extensions = append(b.extensions[:idx], b.extensions[idx+1:]...)
	delete(b.reports, name)
	b.mu.Unlock()

	var wg sync.WaitGroup
	for i := range b.nodes.shards {
		s := &b.nodes.shards[i]
		s.mu.Lock()
		nodes := make([]*adaptedNode, 0, len(s.adapted))
		for _, n := range s.adapted {
			nodes = append(nodes, n)
		}
		s.mu.Unlock()
		if len(nodes) == 0 {
			continue
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a].addr < nodes[b].addr })
		wg.Add(1)
		go func(nodes []*adaptedNode) {
			defer wg.Done()
			for _, n := range nodes {
				b.stopTracking(n.addr, name)
				err := b.revokeExtension(context.Background(), n, name)
				detail := ""
				if err != nil {
					detail = "failed: " + err.Error()
				}
				b.log("revoke", n.id, name, detail)
			}
		}(nodes)
	}
	wg.Wait()
	return nil
}

// revokeExtension withdraws one extension at one node, inside the trace that
// installed it there. The caller logs the outcome.
func (b *Base) revokeExtension(ctx context.Context, n *adaptedNode, name string) error {
	tr := b.traceRef()
	rctx, sp := tr.StartSpan(trace.NewContext(ctx, b.pushSpanCtx(n.addr, name)), "base.revoke")
	sp.Tag("ext", name)
	sp.Tag("node", n.id)
	ictx, cancel := context.WithTimeout(rctx, b.cfg.CallTimeout)
	_, err := transport.Invoke[RevokeReq, EmptyResp](ictx, b.caller, n.addr, MethodRevoke, RevokeReq{Name: name})
	cancel()
	sp.End(err)
	return err
}

// pushSpanCtx returns the span context under which ext was pushed to the
// node at addr, or the zero context.
func (b *Base) pushSpanCtx(nodeAddr, extName string) trace.SpanContext {
	s := b.nodes.shard(nodeAddr)
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.adapted[nodeAddr]; ok {
		return n.spanCtxs[extName]
	}
	return trace.SpanContext{}
}

// Extensions lists the base's policy set names in order.
func (b *Base) Extensions() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, len(b.extensions))
	for i, e := range b.extensions {
		out[i] = e.Name
	}
	return out
}

// AdaptNode pushes every extension of the policy set to the node's
// adaptation service and starts keeping the leases alive.
func (b *Base) AdaptNode(nodeID, nodeAddr string) error {
	return b.AdaptNodeCtx(context.Background(), nodeID, nodeAddr)
}

// AdaptNodeCtx is AdaptNode joining the trace carried by ctx (e.g. the
// discovery announcement that surfaced the node); without one it roots a new
// trace.
func (b *Base) AdaptNodeCtx(ctx context.Context, nodeID, nodeAddr string) error {
	if b.closed.Load() {
		return fmt.Errorf("core: base %s is closed", b.cfg.Name)
	}
	s := b.nodes.shard(nodeAddr)
	s.mu.Lock()
	if _, dup := s.adapted[nodeAddr]; dup {
		s.mu.Unlock()
		return nil // already adapted
	}
	if _, deg := s.degraded[nodeAddr]; deg {
		// The node is back from a partition, not newly arrived: reconcile its
		// inventory instead of blindly re-pushing the whole policy set.
		s.mu.Unlock()
		res := b.reconcileNode(ctx, nodeAddr)
		if res.Err != "" {
			return fmt.Errorf("core: reconcile %s: %s", nodeAddr, res.Err)
		}
		return nil
	}
	n := newAdaptedNode(nodeID, nodeAddr)
	s.adapted[nodeAddr] = n
	s.mu.Unlock()
	b.mu.Lock()
	exts := append([]Extension(nil), b.extensions...)
	b.mu.Unlock()

	ctx, sp := b.traceRef().StartSpan(ctx, "base.adapt")
	sp.Tag("node", nodeID)
	sp.Annotatef("%d extensions to push", len(exts))

	b.log("adapt", nodeID, "", fmt.Sprintf("%d extensions", len(exts)))
	// The whole policy set rides one batched apply when the peer supports it.
	installErrs, _ := b.applyToNode(ctx, n, exts, nil)
	var firstErr error
	for _, ext := range exts {
		if err := installErrs[ext.Name]; err != nil {
			b.log("push", nodeID, ext.Name, "failed: "+err.Error())
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	sp.End(firstErr)
	if firstErr != nil {
		// Nothing woven anywhere reachable: forget the node so a later
		// attempt can retry cleanly.
		s.mu.Lock()
		if len(n.grants) == 0 && s.adapted[nodeAddr] == n {
			delete(s.adapted, nodeAddr)
		}
		s.mu.Unlock()
	}
	return firstErr
}

// Adapted lists the addresses of currently adapted nodes, sorted.
func (b *Base) Adapted() []string {
	return b.nodes.adaptedAddrs()
}

// Activity returns the distribution log.
func (b *Base) Activity() []BaseActivity {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BaseActivity, len(b.activity))
	copy(out, b.activity)
	return out
}

// Release stops renewing all leases held at the node and forgets it (journal
// record included — the release is deliberate); the receiver will expire and
// withdraw the extensions on its own (§3.2's revocation path).
func (b *Base) Release(nodeAddr string) {
	s := b.nodes.shard(nodeAddr)
	s.mu.Lock()
	n, ok := s.adapted[nodeAddr]
	if ok {
		delete(s.adapted, nodeAddr)
	}
	_, wasDegraded := s.degraded[nodeAddr]
	delete(s.degraded, nodeAddr)
	s.mu.Unlock()
	b.sched.CancelNode(nodeAddr)
	if ok || wasDegraded {
		if err := b.cfg.Journal.DeleteNode(nodeAddr); err != nil {
			b.metricsRef().journalErrs.Inc()
		}
	}
	if ok {
		b.log("depart", n.id, "", "released")
	}
}

// Close stops the reconciler and the renewal scheduler. Unlike Release it
// keeps the journal records: a graceful shutdown is indistinguishable from a
// crash on restart, and Recover resumes the same state either way.
func (b *Base) Close() {
	if b.closed.Swap(true) {
		return
	}
	b.mu.Lock()
	stop := b.reconcileStop
	done := b.reconcileDone
	b.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	nodes := b.nodes.clear()
	b.sched.Stop()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].addr < nodes[j].addr })
	for _, n := range nodes {
		b.log("depart", n.id, "", "released")
	}
	m := b.metricsRef()
	m.adapted.Set(0)
	m.degraded.Set(0)
}

// Recover replays the base journal after a crash or restart: every
// non-degraded node is re-adopted with its renewers resumed on the remaining
// lease window (a deadline that already passed triggers an immediate renewal
// attempt, whose failure flows into the normal departure path), and degraded
// nodes stay parked for reconciliation. Returns the number of nodes whose
// renewals were resumed.
func (b *Base) Recover() (int, error) {
	recs, err := b.cfg.Journal.Nodes()
	if err != nil {
		return 0, err
	}
	addrs := make([]string, 0, len(recs))
	for a := range recs {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	now := b.cfg.Clock.Now()
	restored := 0
	for _, addr := range addrs {
		rec := recs[addr]
		if b.closed.Load() {
			break
		}
		s := b.nodes.shard(addr)
		if rec.Degraded {
			s.mu.Lock()
			if _, dup := s.adapted[addr]; !dup {
				s.degraded[addr] = rec.ID
			}
			s.mu.Unlock()
			b.log("degrade", rec.ID, "", "restored from journal; awaiting reconciliation")
			continue
		}
		n := newAdaptedNode(rec.ID, addr)
		s.mu.Lock()
		if _, dup := s.adapted[addr]; dup {
			s.mu.Unlock()
			continue
		}
		s.adapted[addr] = n
		s.mu.Unlock()
		names := make([]string, 0, len(rec.Exts))
		for name := range rec.Exts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			gr := rec.Exts[name]
			g := grantInfo{
				version:  gr.Version,
				leaseID:  lease.ID(gr.LeaseID),
				dur:      time.Duration(gr.DurMillis) * time.Millisecond,
				deadline: time.UnixMilli(gr.DeadlineMillis),
			}
			if g.dur <= 0 {
				g.dur = b.cfg.LeaseDur
			}
			b.trackGrant(n, name, g, g.deadline.Sub(now), trace.SpanContext{})
		}
		restored++
		b.log("recover", rec.ID, "", fmt.Sprintf("%d leases resumed", len(rec.Exts)))
	}
	return restored, nil
}

// Degraded lists the addresses of nodes parked for reconciliation, sorted.
func (b *Base) Degraded() []string {
	return b.nodes.degradedAddrs()
}

func (b *Base) pushExtension(ctx context.Context, n *adaptedNode, ext Extension) error {
	tr := b.traceRef()
	pctx, sp := tr.StartSpan(ctx, "base.push")
	sp.Tag("ext", ext.Name)
	sp.Tag("node", n.id)
	signed, err := b.signedFor(ext)
	if err != nil {
		sp.End(err)
		return err
	}
	ictx, cancel := context.WithTimeout(pctx, b.cfg.CallTimeout)
	resp, err := transport.Invoke[InstallReq, InstallResp](ictx, b.caller, n.addr, MethodInstall, InstallReq{
		Signed:    signed,
		BaseAddr:  b.cfg.Addr,
		DurMillis: b.cfg.LeaseDur.Milliseconds(),
	})
	cancel()
	if err != nil {
		sp.End(err)
		return fmt.Errorf("core: push %q to %s: %w", ext.Name, n.addr, err)
	}
	// Capture the identity before End: a sampled-out span is recycled there,
	// and Context on the recycled handle would mint an ID for whatever span
	// owns the pooled storage next.
	pushSC := sp.Context()
	sp.End(nil)
	b.log("push", n.id, ext.Name, "")

	// Keep the extension alive until the node leaves our space.
	g := grantInfo{
		version:  ext.Version,
		leaseID:  lease.ID(resp.LeaseID),
		dur:      b.cfg.LeaseDur,
		deadline: b.cfg.Clock.Now().Add(b.cfg.LeaseDur),
	}
	if !b.trackGrant(n, ext.Name, g, b.cfg.LeaseDur, pushSC) {
		// The node departed (or the base closed) while the push was in
		// flight: there is no tracked node to keep alive, so no renewal is
		// scheduled — the receiver's lease will lapse on its own.
		b.log("push", n.id, ext.Name, "node gone mid-push; lease left to expire")
	}
	return nil
}

// trackGrant records the lease granted for ext at n and hands it to the
// renewal scheduler — unless the node was concurrently departed or the base
// closed, in which case nothing is registered (a scheduled renewal for an
// untracked node would leak: nobody would ever cancel it). window is the
// first lease window to renew within (the full lease on a fresh push, the
// remaining time to the journalled deadline on recovery). Reports whether the
// grant was tracked; on success the node is checkpointed.
func (b *Base) trackGrant(n *adaptedNode, extName string, g grantInfo, window time.Duration, sc trace.SpanContext) bool {
	if window <= 0 {
		// The journalled deadline already passed: schedule an immediate
		// renewal attempt; if the receiver expired the lease, the failure
		// flows into the ordinary departure/degradation path.
		window = time.Millisecond
	}
	s := b.nodes.shard(n.addr)
	s.mu.Lock()
	if b.closed.Load() || s.adapted[n.addr] != n {
		s.mu.Unlock()
		return false
	}
	if old, dup := n.grants[extName]; dup && old.leaseID != g.leaseID {
		// Replaced mid-flight (e.g. a version upgrade): the old lease is no
		// longer ours to keep alive.
		b.sched.Cancel(n.addr, old.leaseID)
	}
	if n.spanCtxs == nil {
		n.spanCtxs = make(map[string]trace.SpanContext)
	}
	n.spanCtxs[extName] = sc
	if n.grants == nil {
		n.grants = make(map[string]grantInfo)
	}
	n.grants[extName] = g
	b.journalNode(n)
	b.sched.Add(n.addr, g.leaseID, window)
	s.mu.Unlock()
	return true
}

// noteRenewal records a successful renewal's new absolute deadline and
// checkpoints it. It is the scheduler's OnRenew callback, so the lease is
// identified by (node, lease ID) rather than extension name.
func (b *Base) noteRenewal(node string, id lease.ID, granted time.Duration) {
	s := b.nodes.shard(node)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.adapted[node]
	if !ok {
		return
	}
	for name, g := range n.grants {
		if g.leaseID != id {
			continue
		}
		g.dur = granted
		g.deadline = b.cfg.Clock.Now().Add(granted)
		n.grants[name] = g
		b.journalNode(n)
		return
	}
}

// journalNode checkpoints one node's record. Callers hold the node's shard
// lock.
func (b *Base) journalNode(n *adaptedNode) {
	if b.cfg.Journal == nil {
		return
	}
	rec := NodeRecord{ID: n.id, Exts: make(map[string]GrantRecord, len(n.grants))}
	for name, g := range n.grants {
		rec.Exts[name] = GrantRecord{
			Version:        g.version,
			LeaseID:        string(g.leaseID),
			DurMillis:      g.dur.Milliseconds(),
			DeadlineMillis: g.deadline.UnixMilli(),
		}
	}
	if err := b.cfg.Journal.PutNode(n.addr, rec); err != nil {
		b.metricsRef().journalErrs.Inc()
	}
}

func (b *Base) nodeDeparted(nodeAddr string) {
	// Whatever the node's fate, its scheduled renewals stop now; degraded
	// nodes re-enter through reconciliation, which re-arms the scheduler.
	b.sched.CancelNode(nodeAddr)

	// When the node's circuit is open the link is down but the node may well
	// still be in our space: park it as degraded for reconciliation instead
	// of treating it as a departure (no roam hints — it did not move).
	degrade := b.cfg.Breaker.State(nodeAddr) != transport.BreakerClosed
	if b.closed.Load() {
		degrade = false
	}

	s := b.nodes.shard(nodeAddr)
	s.mu.Lock()
	n, ok := s.adapted[nodeAddr]
	if ok {
		delete(s.adapted, nodeAddr)
		if degrade {
			s.degraded[nodeAddr] = n.id
		}
	}
	s.mu.Unlock()
	b.mu.Lock()
	neighbors := append([]string(nil), b.neighbors...)
	cb := b.onDepart
	b.mu.Unlock()
	if !ok {
		return
	}
	tr := b.traceRef()
	if degrade {
		_, dsp := tr.StartSpan(context.Background(), "base.degrade")
		dsp.Tag("node", n.id)
		dsp.Annotatef("circuit open; parked for reconciliation")
		dsp.End(nil)
		tr.Eventf(nil, "base", "node %s degraded (circuit open); awaiting reconciliation", n.id)
		b.log("degrade", n.id, "", "circuit open; awaiting reconciliation")
		// Keep the journal record but flag it, so a restarted base knows to
		// reconcile rather than resume renewals.
		if b.cfg.Journal != nil {
			s.mu.Lock()
			rec := NodeRecord{ID: n.id, Degraded: true, Exts: make(map[string]GrantRecord, len(n.grants))}
			for name, g := range n.grants {
				rec.Exts[name] = GrantRecord{
					Version:        g.version,
					LeaseID:        string(g.leaseID),
					DurMillis:      g.dur.Milliseconds(),
					DeadlineMillis: g.deadline.UnixMilli(),
				}
			}
			s.mu.Unlock()
			if err := b.cfg.Journal.PutNode(nodeAddr, rec); err != nil {
				b.metricsRef().journalErrs.Inc()
			}
		}
		return
	}
	if err := b.cfg.Journal.DeleteNode(nodeAddr); err != nil {
		b.metricsRef().journalErrs.Inc()
	}
	_, dsp := tr.StartSpan(context.Background(), "base.depart")
	dsp.Tag("node", n.id)
	dsp.Annotatef("lease renewal failed")
	dsp.End(nil)
	tr.Eventf(nil, "base", "node %s departed (lease renewal failed)", n.id)
	b.log("depart", n.id, "", "lease renewal failed")

	// Simple roaming: hint neighbour bases that the node may have entered
	// their area.
	for _, nb := range neighbors {
		ctx, cancel := context.WithTimeout(context.Background(), b.cfg.CallTimeout)
		_, err := transport.Invoke[RoamReq, EmptyResp](ctx, b.caller, nb, MethodBaseRoam,
			RoamReq{NodeID: n.id, NodeAddr: n.addr})
		cancel()
		detail := nb
		if err != nil {
			detail = nb + " failed: " + err.Error()
		}
		b.log("roam-hint", n.id, "", detail)
	}
	if cb != nil {
		cb(nodeAddr)
	}
}

// stopTracking forgets the grant for extName at nodeAddr and cancels its
// scheduled renewal. The push span context is kept: revocation spans join the
// original install trace even after the grant is gone.
func (b *Base) stopTracking(nodeAddr, extName string) {
	s := b.nodes.shard(nodeAddr)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.adapted[nodeAddr]
	if !ok {
		return
	}
	if g, held := n.grants[extName]; held {
		b.sched.Cancel(nodeAddr, g.leaseID)
	}
	delete(n.grants, extName)
	b.journalNode(n)
}

func (b *Base) log(ev, node, ext, detail string) {
	// Gauge values come from the shard table; compute them before taking
	// b.mu (lock order: shard locks never follow b.mu).
	nAdapted, nDegraded := b.nodes.counts()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.activity = append(b.activity, BaseActivity{
		AtMillis: b.cfg.Clock.Now().UnixMilli(),
		Event:    ev,
		Node:     node,
		Ext:      ext,
		Detail:   detail,
	})
	switch ev {
	case "adapt":
		b.m.adapts.Inc()
	case "push":
		if detail == "" {
			b.m.pushes.Inc()
		} else {
			b.m.pushErrors.Inc()
		}
	case "depart":
		b.m.departures.Inc()
	case "revoke":
		b.m.revokes.Inc()
	case "roam-hint":
		b.m.roamHints.Inc()
	case "degrade":
		b.m.degrades.Inc()
	case "recover":
		b.m.recovers.Inc()
	}
	b.m.adapted.Set(int64(nAdapted))
	b.m.degraded.Set(int64(nDegraded))
}

// ServeOn registers the base's RPC surface on mux: the monitoring record
// sink, the lookup watcher callback and the roaming hint endpoint.
func (b *Base) ServeOn(mux *transport.Mux) {
	transport.Register(mux, MethodBasePost, func(_ context.Context, req PostReq) (EmptyResp, error) {
		if b.cfg.Store == nil {
			return EmptyResp{}, fmt.Errorf("core: base %s has no store", b.cfg.Name)
		}
		_, err := b.cfg.Store.Append(req.Record)
		return EmptyResp{}, err
	})
	transport.Register(mux, MethodBaseQuery, func(_ context.Context, req QueryReq) (QueryResp, error) {
		if b.cfg.Store == nil {
			return QueryResp{}, fmt.Errorf("core: base %s has no store", b.cfg.Name)
		}
		return QueryResp{Records: b.cfg.Store.Query(req.Filter)}, nil
	})
	transport.Register(mux, MethodBaseOnService, func(ctx context.Context, n event.Notification) (EmptyResp, error) {
		var ev registry.Event
		if err := n.DecodeBody(&ev); err != nil {
			return EmptyResp{}, err
		}
		if ev.Kind == registry.Added && ev.Item.Name == AdaptationService {
			// Adapt inside the trace of the discovery announcement: prefer
			// the span context delivered with the request, falling back to
			// the one stamped on the registry event itself.
			actx := trace.Detach(ctx)
			if _, ok := trace.FromContext(actx); !ok {
				actx = trace.NewContext(actx, ev.Trace)
			}
			go func() { _ = b.AdaptNodeCtx(actx, ev.Item.ID, ev.Item.Addr) }()
		}
		return EmptyResp{}, nil
	})
	transport.Register(mux, MethodBaseRoam, func(ctx context.Context, req RoamReq) (EmptyResp, error) {
		actx := trace.Detach(ctx)
		go func() { _ = b.AdaptNodeCtx(actx, req.NodeID, req.NodeAddr) }()
		return EmptyResp{}, nil
	})
	transport.Register(mux, MethodBaseStatus, func(_ context.Context, _ EmptyResp) (BaseStatusResp, error) {
		return b.Status(), nil
	})
	transport.Register(mux, MethodBaseFleet, func(_ context.Context, _ EmptyResp) (FleetResp, error) {
		return b.FleetStatus(), nil
	})
	transport.Register(mux, MethodBaseAnalyze, func(_ context.Context, req AnalyzeReq) (AnalyzeResp, error) {
		rep, ok := b.AnalysisFor(req.Ext)
		if !ok {
			return AnalyzeResp{}, fmt.Errorf("core: base %s has no analysis for extension %q", b.cfg.Name, req.Ext)
		}
		return AnalyzeResp{Report: rep}, nil
	})
}

// WatchLookup subscribes the base to adaptation-service arrivals at the
// lookup service behind client, and adapts all already-registered nodes. The
// base must already be served on its own mux (ServeOn) so the watcher
// callback can reach it.
func (b *Base) WatchLookup(client *registry.Client, watchDur time.Duration) (string, error) {
	watchID, err := client.Watch(registry.Template{Name: AdaptationService}, watchDur, b.cfg.Addr, MethodBaseOnService)
	if err != nil {
		return "", fmt.Errorf("core: watch lookup: %w", err)
	}
	items, err := client.Find(registry.Template{Name: AdaptationService})
	if err != nil {
		return watchID, fmt.Errorf("core: initial find: %w", err)
	}
	for _, it := range items {
		go func(it registry.ServiceItem) { _ = b.AdaptNode(it.ID, it.Addr) }(it)
	}
	return watchID, nil
}
