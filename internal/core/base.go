package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/lease"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/sign"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"

	"repro/internal/event"
)

// RPC method names served by a base.
const (
	MethodBasePost      = "base.post"      // monitoring extensions post records here
	MethodBaseQuery     = "base.query"     // clients query the movement database
	MethodBaseOnService = "base.onservice" // lookup watcher callback
	MethodBaseRoam      = "base.roam"      // roaming hint from a neighbour base
)

// Wire types for the base RPC surface.
type (
	// PostReq delivers one monitoring record.
	PostReq struct {
		Record store.Record
	}
	// RoamReq hints that a node departed a neighbour's area.
	RoamReq struct {
		NodeID   string
		NodeAddr string
	}
	// QueryReq filters the base's movement database.
	QueryReq struct {
		Filter store.Filter
	}
	// QueryResp returns matching records.
	QueryResp struct {
		Records []store.Record
	}
)

// BaseConfig assembles an extension base.
type BaseConfig struct {
	Name   string
	Addr   string // transport address the base serves on
	Caller transport.Caller
	Signer *sign.Signer
	Clock  clock.Clock
	Store  *store.Store // optional sink for monitoring records

	// LeaseDur is the lease granted per pushed extension (default 10s);
	// RenewFraction controls when renewals fire (default 0.5); RenewRetries
	// retries failed renewals within the lease before declaring the node
	// departed (for lossy wireless links; default 0).
	LeaseDur      time.Duration
	RenewFraction float64
	RenewRetries  int
	// CallTimeout bounds each RPC (default 2s). With a Policy set it bounds
	// the whole retried call, so it should cover the policy's backoff budget.
	CallTimeout time.Duration
	// Policy, when set, routes every outgoing RPC (pushes, renewals, revokes,
	// roaming hints) through retry-with-backoff. Retried installs/revokes are
	// safe: the receiver wire surface is idempotent.
	Policy *transport.Policy
}

// BaseActivity is one entry of the base's distribution log (§3.2: each base
// keeps track of what nodes were adapted, at what point in time).
type BaseActivity struct {
	AtMillis int64
	Event    string // "adapt", "push", "depart", "revoke", "roam-hint", "roam-adopt"
	Node     string
	Ext      string
	Detail   string
}

type adaptedNode struct {
	id       string
	addr     string
	renewers map[string]*lease.Renewer // by extension name
	// spanCtxs remembers, per extension, the span under which the push
	// succeeded, so later renewals and revokes join the install's trace.
	spanCtxs map[string]trace.SpanContext
}

// Base is a MIDAS extension base: it holds the extension set of one
// environment, adapts arriving nodes, keeps the distributed extensions alive
// and notices departures through failing renewals.
type Base struct {
	cfg    BaseConfig
	caller transport.Caller // cfg.Caller, wrapped by cfg.Policy when set

	mu         sync.Mutex
	extensions []Extension
	adapted    map[string]*adaptedNode // by node addr
	neighbors  []string
	activity   []BaseActivity
	reg        *metrics.Registry
	m          baseMetrics
	tracer     *trace.Tracer

	departures chan string
	onDepart   func(nodeAddr string)
}

// baseMetrics counts the distribution side of adaptation, mirroring the
// distribution log; all fields are nil-safe no-ops until Instrument.
type baseMetrics struct {
	adapts     *metrics.Counter
	pushes     *metrics.Counter
	pushErrors *metrics.Counter
	departures *metrics.Counter
	revokes    *metrics.Counter
	roamHints  *metrics.Counter
	adapted    *metrics.Gauge
}

// Instrument records node adaptations, extension pushes (and push failures),
// departures, revocations and roaming hints in reg, plus the adapted-node
// gauge. Lease renewers started for pushed extensions join the same registry.
// A nil reg is a no-op.
func (b *Base) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reg = reg
	b.m = baseMetrics{
		adapts:     reg.Counter("base.adapts"),
		pushes:     reg.Counter("base.pushes"),
		pushErrors: reg.Counter("base.push_errors"),
		departures: reg.Counter("base.departures"),
		revokes:    reg.Counter("base.revokes"),
		roamHints:  reg.Counter("base.roam_hints"),
		adapted:    reg.Gauge("base.adapted_nodes"),
	}
	b.m.adapted.Set(int64(len(b.adapted)))
}

// NewBase builds a base.
func NewBase(cfg BaseConfig) (*Base, error) {
	if cfg.Caller == nil || cfg.Signer == nil {
		return nil, fmt.Errorf("core: base needs Caller and Signer")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.LeaseDur <= 0 {
		cfg.LeaseDur = 10 * time.Second
	}
	if cfg.RenewFraction <= 0 || cfg.RenewFraction >= 1 {
		cfg.RenewFraction = 0.5
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	return &Base{
		cfg:     cfg,
		caller:  cfg.Policy.Wrap(cfg.Caller), // nil Policy leaves the caller bare
		adapted: make(map[string]*adaptedNode),
	}, nil
}

// Signer returns the base's signing identity (receivers must trust its
// public key).
func (b *Base) Signer() *sign.Signer { return b.cfg.Signer }

// Trace records the base's lifecycle (adapt, push, renew, revoke, depart) as
// spans in tr, wraps the base's outbound caller so calls carry trace context
// across the fabric, and — when a Policy is configured — makes each retry
// attempt a child span. Call before the base starts serving; a nil tr is a
// no-op.
func (b *Base) Trace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	b.mu.Lock()
	b.tracer = tr
	b.mu.Unlock()
	b.caller = transport.TraceCalls(b.caller, tr)
	b.cfg.Policy.Trace(tr)
}

func (b *Base) traceRef() *trace.Tracer {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tracer
}

// OnDepart registers a callback invoked when a node's lease renewals fail.
func (b *Base) OnDepart(fn func(nodeAddr string)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onDepart = fn
}

// AddNeighbor registers a neighbour base that receives roaming hints when
// nodes depart this base's area.
func (b *Base) AddNeighbor(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.neighbors = append(b.neighbors, addr)
}

// AddExtension adds ext to the base's policy set and pushes it to every
// currently adapted node.
func (b *Base) AddExtension(ext Extension) error {
	if err := ext.Validate(); err != nil {
		return err
	}
	b.mu.Lock()
	for _, e := range b.extensions {
		if e.Name == ext.Name {
			b.mu.Unlock()
			return fmt.Errorf("core: base already has extension %q (use ReplaceExtension)", ext.Name)
		}
	}
	b.extensions = append(b.extensions, ext)
	nodes := b.adaptedNodesLocked()
	b.mu.Unlock()

	for _, n := range nodes {
		if err := b.pushExtension(context.Background(), n, ext); err != nil {
			b.log("push", n.id, ext.Name, "failed: "+err.Error())
		}
	}
	return nil
}

// ReplaceExtension swaps in a newer version of an existing extension and
// pushes it to every adapted node (policy evolution, §3.2).
func (b *Base) ReplaceExtension(ext Extension) error {
	if err := ext.Validate(); err != nil {
		return err
	}
	b.mu.Lock()
	found := false
	for i, e := range b.extensions {
		if e.Name == ext.Name {
			if ext.Version <= e.Version {
				b.mu.Unlock()
				return fmt.Errorf("core: replacement of %q needs version > %d", ext.Name, e.Version)
			}
			b.extensions[i] = ext
			found = true
			break
		}
	}
	if !found {
		b.mu.Unlock()
		return fmt.Errorf("core: base has no extension %q", ext.Name)
	}
	nodes := b.adaptedNodesLocked()
	b.mu.Unlock()

	for _, n := range nodes {
		if err := b.pushExtension(context.Background(), n, ext); err != nil {
			b.log("push", n.id, ext.Name, "failed: "+err.Error())
		}
	}
	return nil
}

// RemoveExtension drops ext from the policy set and revokes it from all
// adapted nodes.
func (b *Base) RemoveExtension(name string) error {
	b.mu.Lock()
	idx := -1
	for i, e := range b.extensions {
		if e.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		b.mu.Unlock()
		return fmt.Errorf("core: base has no extension %q", name)
	}
	b.extensions = append(b.extensions[:idx], b.extensions[idx+1:]...)
	nodes := b.adaptedNodesLocked()
	b.mu.Unlock()

	tr := b.traceRef()
	for _, n := range nodes {
		b.stopRenewer(n.addr, name)
		// Revoke inside the trace that installed the extension on this node.
		rctx, sp := tr.StartSpan(trace.NewContext(context.Background(), b.pushSpanCtx(n.addr, name)), "base.revoke")
		sp.Tag("ext", name)
		sp.Tag("node", n.id)
		ctx, cancel := context.WithTimeout(rctx, b.cfg.CallTimeout)
		_, err := transport.Invoke[RevokeReq, EmptyResp](ctx, b.caller, n.addr, MethodRevoke, RevokeReq{Name: name})
		cancel()
		sp.End(err)
		detail := ""
		if err != nil {
			detail = "failed: " + err.Error()
		}
		b.log("revoke", n.id, name, detail)
	}
	return nil
}

// pushSpanCtx returns the span context under which ext was pushed to the
// node at addr, or the zero context.
func (b *Base) pushSpanCtx(nodeAddr, extName string) trace.SpanContext {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n, ok := b.adapted[nodeAddr]; ok {
		return n.spanCtxs[extName]
	}
	return trace.SpanContext{}
}

// Extensions lists the base's policy set names in order.
func (b *Base) Extensions() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, len(b.extensions))
	for i, e := range b.extensions {
		out[i] = e.Name
	}
	return out
}

// AdaptNode pushes every extension of the policy set to the node's
// adaptation service and starts keeping the leases alive.
func (b *Base) AdaptNode(nodeID, nodeAddr string) error {
	return b.AdaptNodeCtx(context.Background(), nodeID, nodeAddr)
}

// AdaptNodeCtx is AdaptNode joining the trace carried by ctx (e.g. the
// discovery announcement that surfaced the node); without one it roots a new
// trace.
func (b *Base) AdaptNodeCtx(ctx context.Context, nodeID, nodeAddr string) error {
	b.mu.Lock()
	if _, dup := b.adapted[nodeAddr]; dup {
		b.mu.Unlock()
		return nil // already adapted
	}
	n := &adaptedNode{
		id:       nodeID,
		addr:     nodeAddr,
		renewers: make(map[string]*lease.Renewer),
		spanCtxs: make(map[string]trace.SpanContext),
	}
	b.adapted[nodeAddr] = n
	exts := append([]Extension(nil), b.extensions...)
	b.mu.Unlock()

	ctx, sp := b.traceRef().StartSpan(ctx, "base.adapt")
	sp.Tag("node", nodeID)
	sp.Annotatef("%d extensions to push", len(exts))

	b.log("adapt", nodeID, "", fmt.Sprintf("%d extensions", len(exts)))
	var firstErr error
	for _, ext := range exts {
		if err := b.pushExtension(ctx, n, ext); err != nil {
			b.log("push", nodeID, ext.Name, "failed: "+err.Error())
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	sp.End(firstErr)
	if firstErr != nil {
		// Nothing woven anywhere reachable: forget the node so a later
		// attempt can retry cleanly.
		b.mu.Lock()
		empty := len(n.renewers) == 0
		if empty {
			delete(b.adapted, nodeAddr)
		}
		b.mu.Unlock()
	}
	return firstErr
}

// Adapted lists the addresses of currently adapted nodes, sorted.
func (b *Base) Adapted() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.adapted))
	for addr := range b.adapted {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// Activity returns the distribution log.
func (b *Base) Activity() []BaseActivity {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BaseActivity, len(b.activity))
	copy(out, b.activity)
	return out
}

// Release stops renewing all leases held at the node; the receiver will
// expire and withdraw the extensions on its own (§3.2's revocation path).
func (b *Base) Release(nodeAddr string) {
	b.mu.Lock()
	n, ok := b.adapted[nodeAddr]
	if ok {
		delete(b.adapted, nodeAddr)
	}
	var renewers []*lease.Renewer
	if ok {
		for _, r := range n.renewers {
			renewers = append(renewers, r)
		}
	}
	b.mu.Unlock()
	for _, r := range renewers {
		r.Stop()
	}
	if ok {
		b.log("depart", n.id, "", "released")
	}
}

// Close releases every adapted node.
func (b *Base) Close() {
	for _, addr := range b.Adapted() {
		b.Release(addr)
	}
}

func (b *Base) pushExtension(ctx context.Context, n *adaptedNode, ext Extension) error {
	tr := b.traceRef()
	pctx, sp := tr.StartSpan(ctx, "base.push")
	sp.Tag("ext", ext.Name)
	sp.Tag("node", n.id)
	signed, err := Sign(b.cfg.Signer, ext)
	if err != nil {
		sp.End(err)
		return err
	}
	ictx, cancel := context.WithTimeout(pctx, b.cfg.CallTimeout)
	resp, err := transport.Invoke[InstallReq, InstallResp](ictx, b.caller, n.addr, MethodInstall, InstallReq{
		Signed:    signed,
		BaseAddr:  b.cfg.Addr,
		DurMillis: b.cfg.LeaseDur.Milliseconds(),
	})
	cancel()
	if err != nil {
		sp.End(err)
		return fmt.Errorf("core: push %q to %s: %w", ext.Name, n.addr, err)
	}
	sp.End(nil)
	pushSC := sp.Context()
	b.log("push", n.id, ext.Name, "")

	// Keep the extension alive until the node leaves our space.
	renewer := lease.NewRenewer(b.cfg.Clock,
		lease.Lease{ID: lease.ID(resp.LeaseID), Duration: b.cfg.LeaseDur},
		func(id lease.ID, d time.Duration) (lease.Lease, error) {
			// Each renewal is a child span of the push that installed the
			// extension, so the whole lease history reads as one trace.
			lctx, lsp := tr.StartSpan(trace.NewContext(context.Background(), pushSC), "lease.renew")
			lsp.Tag("ext", ext.Name)
			lsp.Tag("node", n.id)
			rctx, rcancel := context.WithTimeout(lctx, b.cfg.CallTimeout)
			defer rcancel()
			resp, err := transport.Invoke[RenewExtReq, RenewExtResp](rctx, b.caller, n.addr, MethodRenewE, RenewExtReq{
				LeaseID:   string(id),
				DurMillis: d.Milliseconds(),
			})
			lsp.End(err)
			if err != nil {
				return lease.Lease{}, err
			}
			// Adopt the receiver's actually granted duration, which may be
			// shorter than requested.
			granted := time.Duration(resp.DurMillis) * time.Millisecond
			if granted <= 0 {
				granted = d
			}
			return lease.Lease{ID: id, Duration: granted}, nil
		},
		b.cfg.RenewFraction,
		func(error) {
			// Renewal failed: the node is out of reach. Handle departure
			// asynchronously (we are on the renewer's own goroutine).
			go b.nodeDeparted(n.addr)
		})

	renewer.SetRetries(b.cfg.RenewRetries)

	b.mu.Lock()
	reg := b.reg
	b.mu.Unlock()
	renewer.Instrument(reg)

	b.mu.Lock()
	if old, dup := n.renewers[ext.Name]; dup {
		go old.Stop()
	}
	n.renewers[ext.Name] = renewer
	if n.spanCtxs == nil {
		n.spanCtxs = make(map[string]trace.SpanContext)
	}
	n.spanCtxs[ext.Name] = pushSC
	b.mu.Unlock()
	renewer.Start()
	return nil
}

func (b *Base) nodeDeparted(nodeAddr string) {
	b.mu.Lock()
	n, ok := b.adapted[nodeAddr]
	if ok {
		delete(b.adapted, nodeAddr)
	}
	neighbors := append([]string(nil), b.neighbors...)
	cb := b.onDepart
	b.mu.Unlock()
	if !ok {
		return
	}
	for _, r := range n.renewers {
		r.Stop()
	}
	tr := b.traceRef()
	_, dsp := tr.StartSpan(context.Background(), "base.depart")
	dsp.Tag("node", n.id)
	dsp.Annotatef("lease renewal failed")
	dsp.End(nil)
	tr.Eventf(nil, "base", "node %s departed (lease renewal failed)", n.id)
	b.log("depart", n.id, "", "lease renewal failed")

	// Simple roaming: hint neighbour bases that the node may have entered
	// their area.
	for _, nb := range neighbors {
		ctx, cancel := context.WithTimeout(context.Background(), b.cfg.CallTimeout)
		_, err := transport.Invoke[RoamReq, EmptyResp](ctx, b.caller, nb, MethodBaseRoam,
			RoamReq{NodeID: n.id, NodeAddr: n.addr})
		cancel()
		detail := nb
		if err != nil {
			detail = nb + " failed: " + err.Error()
		}
		b.log("roam-hint", n.id, "", detail)
	}
	if cb != nil {
		cb(nodeAddr)
	}
}

func (b *Base) stopRenewer(nodeAddr, extName string) {
	b.mu.Lock()
	var r *lease.Renewer
	if n, ok := b.adapted[nodeAddr]; ok {
		r = n.renewers[extName]
		delete(n.renewers, extName)
	}
	b.mu.Unlock()
	if r != nil {
		r.Stop()
	}
}

func (b *Base) adaptedNodesLocked() []*adaptedNode {
	out := make([]*adaptedNode, 0, len(b.adapted))
	for _, n := range b.adapted {
		out = append(out, n)
	}
	return out
}

func (b *Base) log(ev, node, ext, detail string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.activity = append(b.activity, BaseActivity{
		AtMillis: b.cfg.Clock.Now().UnixMilli(),
		Event:    ev,
		Node:     node,
		Ext:      ext,
		Detail:   detail,
	})
	switch ev {
	case "adapt":
		b.m.adapts.Inc()
	case "push":
		if detail == "" {
			b.m.pushes.Inc()
		} else {
			b.m.pushErrors.Inc()
		}
	case "depart":
		b.m.departures.Inc()
	case "revoke":
		b.m.revokes.Inc()
	case "roam-hint":
		b.m.roamHints.Inc()
	}
	b.m.adapted.Set(int64(len(b.adapted)))
}

// ServeOn registers the base's RPC surface on mux: the monitoring record
// sink, the lookup watcher callback and the roaming hint endpoint.
func (b *Base) ServeOn(mux *transport.Mux) {
	transport.Register(mux, MethodBasePost, func(_ context.Context, req PostReq) (EmptyResp, error) {
		if b.cfg.Store == nil {
			return EmptyResp{}, fmt.Errorf("core: base %s has no store", b.cfg.Name)
		}
		_, err := b.cfg.Store.Append(req.Record)
		return EmptyResp{}, err
	})
	transport.Register(mux, MethodBaseQuery, func(_ context.Context, req QueryReq) (QueryResp, error) {
		if b.cfg.Store == nil {
			return QueryResp{}, fmt.Errorf("core: base %s has no store", b.cfg.Name)
		}
		return QueryResp{Records: b.cfg.Store.Query(req.Filter)}, nil
	})
	transport.Register(mux, MethodBaseOnService, func(ctx context.Context, n event.Notification) (EmptyResp, error) {
		var ev registry.Event
		if err := n.DecodeBody(&ev); err != nil {
			return EmptyResp{}, err
		}
		if ev.Kind == registry.Added && ev.Item.Name == AdaptationService {
			// Adapt inside the trace of the discovery announcement: prefer
			// the span context delivered with the request, falling back to
			// the one stamped on the registry event itself.
			actx := trace.Detach(ctx)
			if _, ok := trace.FromContext(actx); !ok {
				actx = trace.NewContext(actx, ev.Trace)
			}
			go func() { _ = b.AdaptNodeCtx(actx, ev.Item.ID, ev.Item.Addr) }()
		}
		return EmptyResp{}, nil
	})
	transport.Register(mux, MethodBaseRoam, func(ctx context.Context, req RoamReq) (EmptyResp, error) {
		actx := trace.Detach(ctx)
		go func() { _ = b.AdaptNodeCtx(actx, req.NodeID, req.NodeAddr) }()
		return EmptyResp{}, nil
	})
}

// WatchLookup subscribes the base to adaptation-service arrivals at the
// lookup service behind client, and adapts all already-registered nodes. The
// base must already be served on its own mux (ServeOn) so the watcher
// callback can reach it.
func (b *Base) WatchLookup(client *registry.Client, watchDur time.Duration) (string, error) {
	watchID, err := client.Watch(registry.Template{Name: AdaptationService}, watchDur, b.cfg.Addr, MethodBaseOnService)
	if err != nil {
		return "", fmt.Errorf("core: watch lookup: %w", err)
	}
	items, err := client.Find(registry.Template{Name: AdaptationService})
	if err != nil {
		return watchID, fmt.Errorf("core: initial find: %w", err)
	}
	for _, it := range items {
		go func(it registry.ServiceItem) { _ = b.AdaptNode(it.ID, it.Addr) }(it)
	}
	return watchID, nil
}
