package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/sign"
	"repro/internal/transport"
)

// stormCaller is a fake fleet node fabric for renewal-storm tests: it answers
// the batch surface directly (no receiver needed), counts calls per method,
// and can mark nodes crashed (every call to them fails) or legacy (batch
// methods answer ErrNoMethod).
type stormCaller struct {
	mu          sync.Mutex
	calls       map[string]int  // method -> count
	perNode     map[string]int  // node|method -> count
	crashed     map[string]bool // node -> every call fails
	legacy      map[string]bool // node -> batch methods unserved
	leaseSeq    int
	obsPerBatch bool // answer WantObs batches with a synthetic report
	wantObs     int  // renewBatch requests that asked for obs
}

func newStormCaller() *stormCaller {
	return &stormCaller{
		calls:   make(map[string]int),
		perNode: make(map[string]int),
		crashed: make(map[string]bool),
		legacy:  make(map[string]bool),
	}
}

func (c *stormCaller) count(method string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[method]
}

func (c *stormCaller) nodeCount(node, method string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.perNode[node+"|"+method]
}

func (c *stormCaller) wantObsSeen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wantObs
}

func (c *stormCaller) crash(node string)      { c.mu.Lock(); c.crashed[node] = true; c.mu.Unlock() }
func (c *stormCaller) makeLegacy(node string) { c.mu.Lock(); c.legacy[node] = true; c.mu.Unlock() }

func (c *stormCaller) Call(_ context.Context, to, method string, req, resp any) error {
	c.mu.Lock()
	c.calls[method]++
	c.perNode[to+"|"+method]++
	crashed := c.crashed[to]
	legacy := c.legacy[to]
	c.leaseSeq++
	seq := c.leaseSeq
	c.mu.Unlock()

	if crashed {
		return fmt.Errorf("dial %s: %w", to, transport.ErrUnreachable)
	}
	if legacy && (method == MethodRenewBatch || method == MethodApplyBatch) {
		return transport.ErrNoMethod
	}
	minute := time.Minute.Milliseconds()
	switch method {
	case MethodInstall:
		*(resp.(*InstallResp)) = InstallResp{LeaseID: fmt.Sprintf("L%d", seq)}
	case MethodApplyBatch:
		out := ApplyBatchResp{}
		r := req.(ApplyBatchReq)
		for i := range r.Installs {
			out.Installs = append(out.Installs, InstallItemResp{LeaseID: fmt.Sprintf("L%d-%d", seq, i)})
		}
		for range r.Revokes {
			out.Revokes = append(out.Revokes, RevokeItemResp{})
		}
		*(resp.(*ApplyBatchResp)) = out
	case MethodRenewE:
		*(resp.(*RenewExtResp)) = RenewExtResp{DurMillis: minute}
	case MethodRenewBatch:
		r := req.(RenewBatchReq)
		out := RenewBatchResp{}
		for range r.Items {
			out.Items = append(out.Items, RenewItemResp{DurMillis: minute})
		}
		if r.WantObs {
			c.mu.Lock()
			c.wantObs++
			obs := c.obsPerBatch
			c.mu.Unlock()
			if obs {
				// A synthetic per-report delta: every batch "served" its items,
				// odd sequence numbers saw one error, and one span was dropped.
				out.Obs = &ObsReport{
					Methods: []ObsMethodDelta{{
						Method: MethodRenewBatch,
						Count:  uint64(len(r.Items)),
						Errors: uint64(seq % 2),
						SumNs:  int64(len(r.Items)) * 1_000,
					}},
					SpansDropped: 1,
				}
			}
		}
		*(resp.(*RenewBatchResp)) = out
	}
	return nil
}

func newStormBase(t *testing.T, clk clock.Clock, caller transport.Caller, breaker *transport.BreakerSet, batch, workers int) (*Base, *metrics.Registry) {
	t.Helper()
	signer, err := sign.NewSigner("hall-1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBase(BaseConfig{
		Name:          "hall-1",
		Addr:          "base-1",
		Caller:        caller,
		Signer:        signer,
		Clock:         clk,
		Breaker:       breaker,
		LeaseDur:      time.Minute,
		RenewFraction: 0.5,
		RenewRetries:  1,
		RenewBatch:    batch,
		RenewWorkers:  workers,
		CallTimeout:   time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	reg := metrics.New()
	b.Instrument(reg)
	return b, reg
}

// drainRenewals advances the manual clock in tick-sized steps across dur and
// waits for the renewal scheduler to quiesce after each step, so every due
// renewal (and its retries) runs to completion deterministically.
func drainRenewals(t *testing.T, clk *clock.Manual, b *Base, dur, step time.Duration) {
	t.Helper()
	for elapsed := time.Duration(0); elapsed < dur; elapsed += step {
		clk.Advance(step)
		waitUntil(t, "renewals quiesced", b.RenewalsQuiesced)
	}
}

// TestRenewalStormCoalesces pins the batching contract: N leases granted to
// one node in the same tick come due together and must ride ceil(N/batch)
// midas.renewBatch RPCs — not N singleton calls.
func TestRenewalStormCoalesces(t *testing.T) {
	const nExts, batch = 24, 8
	clk := clock.NewManual(time.Unix(1000, 0))
	caller := newStormCaller()
	b, reg := newStormBase(t, clk, caller, nil, batch, 1)

	for i := 0; i < nExts; i++ {
		if err := b.AddExtension(noopExt(fmt.Sprintf("ext-%02d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}
	if got := b.ScheduledRenewals(); got != nExts {
		t.Fatalf("scheduled renewals = %d, want %d", got, nExts)
	}
	// The whole policy set rode one batched apply.
	if got := reg.Snapshot().Counters["base.push_batch"]; got != 1 {
		t.Fatalf("base.push_batch = %d, want 1", got)
	}

	// All leases were granted at the same instant: every renewal comes due at
	// t+30s, in the same wheel advance.
	drainRenewals(t, clk, b, 30*time.Second, 30*time.Second)

	snap := reg.Snapshot()
	wantBatches := uint64((nExts + batch - 1) / batch)
	if got := snap.Counters["base.renew_batch"]; got != wantBatches {
		t.Fatalf("base.renew_batch = %d, want %d (N=%d, batch=%d)", got, wantBatches, nExts, batch)
	}
	if got := snap.Counters["base.renew_batch_leases"]; got != nExts {
		t.Fatalf("base.renew_batch_leases = %d, want %d", got, nExts)
	}
	if got := caller.count(MethodRenewBatch); got != int(wantBatches) {
		t.Fatalf("midas.renewBatch RPCs = %d, want %d", got, wantBatches)
	}
	if got := caller.count(MethodRenewE); got != 0 {
		t.Fatalf("singleton midas.renew RPCs = %d, want 0 during a batched storm", got)
	}
}

// TestRenewalStormCrashParksNodeWithoutStallingOthers crashes one node in a
// two-node storm: its batch fails, retries exhaust, and the breaker parks it
// degraded — while the healthy node's renewals in the same ticks all land.
func TestRenewalStormCrashParksNodeWithoutStallingOthers(t *testing.T) {
	const nExts = 6
	clk := clock.NewManual(time.Unix(1000, 0))
	caller := newStormCaller()
	breaker := transport.NewBreakerSet(1, transport.BreakerConfig{
		Threshold: 1,
		Cooldown:  time.Hour,
		Jitter:    0,
		Clock:     clk,
	})
	b, reg := newStormBase(t, clk, caller, breaker, 8, 2)

	for i := 0; i < nExts; i++ {
		if err := b.AddExtension(noopExt(fmt.Sprintf("ext-%02d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	for _, node := range []string{"robot-a", "robot-b"} {
		if err := b.AdaptNode(node, node); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.ScheduledRenewals(); got != 2*nExts {
		t.Fatalf("scheduled renewals = %d, want %d", got, 2*nExts)
	}

	// robot-a dies mid-flight; its renewal batch at t+30s fails, the retry at
	// t+45s fast-fails on the open circuit, and the node parks degraded.
	caller.crash("robot-a")
	drainRenewals(t, clk, b, 50*time.Second, 10*time.Second)
	waitUntil(t, "robot-a degraded", func() bool {
		d := b.Degraded()
		return len(d) == 1 && d[0] == "robot-a"
	})

	if got := b.Adapted(); len(got) != 1 || got[0] != "robot-b" {
		t.Fatalf("adapted = %v, want [robot-b]", got)
	}
	// The healthy node's renewals were not stalled by the crashed batch.
	if got := caller.nodeCount("robot-b", MethodRenewBatch); got < 1 {
		t.Fatalf("robot-b renew batches = %d, want >= 1", got)
	}
	// robot-a's schedule is gone; robot-b's leases are still being kept alive.
	if got := b.ScheduledRenewals(); got != nExts {
		t.Fatalf("scheduled renewals after crash = %d, want %d (robot-b only)", got, nExts)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["base.degrades"]; got != 1 {
		t.Fatalf("base.degrades = %d, want 1", got)
	}
	if got := snap.Counters["base.departures"]; got != 0 {
		t.Fatalf("base.departures = %d, want 0 (parked, not departed)", got)
	}
	// And the wheel keeps running: the next window renews robot-b again.
	before := caller.nodeCount("robot-b", MethodRenewBatch)
	drainRenewals(t, clk, b, 30*time.Second, 10*time.Second)
	if got := caller.nodeCount("robot-b", MethodRenewBatch); got <= before {
		t.Fatalf("robot-b renew batches stuck at %d after another window", got)
	}
}

// TestRenewalStormLegacyPeerFallsBack pins the compatibility path: a peer
// without the batch surface answers ErrNoMethod, the base remembers it and
// renews that node's leases through singleton midas.renew calls instead.
func TestRenewalStormLegacyPeerFallsBack(t *testing.T) {
	const nExts = 5
	clk := clock.NewManual(time.Unix(1000, 0))
	caller := newStormCaller()
	b, reg := newStormBase(t, clk, caller, nil, 8, 1)

	caller.makeLegacy("robot-old")
	for i := 0; i < nExts; i++ {
		if err := b.AddExtension(noopExt(fmt.Sprintf("ext-%02d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	// The adapt's batched apply already falls back to singleton installs.
	if err := b.AdaptNode("robot-old", "robot-old"); err != nil {
		t.Fatal(err)
	}
	if got := caller.count(MethodInstall); got != nExts {
		t.Fatalf("singleton installs = %d, want %d", got, nExts)
	}

	drainRenewals(t, clk, b, 30*time.Second, 30*time.Second)

	snap := reg.Snapshot()
	if got := snap.Counters["base.batch_fallbacks"]; got < 1 {
		t.Fatalf("base.batch_fallbacks = %d, want >= 1", got)
	}
	if got := snap.Counters["base.renew_batch"]; got != 0 {
		t.Fatalf("base.renew_batch = %d, want 0 for a legacy peer", got)
	}
	if got := caller.count(MethodRenewE); got != nExts {
		t.Fatalf("singleton renews = %d, want %d", got, nExts)
	}
	// The legacy flag sticks: the next window goes straight to singletons
	// without probing the batch method again.
	probes := caller.count(MethodRenewBatch)
	drainRenewals(t, clk, b, 30*time.Second, 30*time.Second)
	if got := caller.count(MethodRenewBatch); got != probes {
		t.Fatalf("midas.renewBatch probed again (%d -> %d) after legacy flag", probes, got)
	}
	if got := caller.count(MethodRenewE); got != 2*nExts {
		t.Fatalf("singleton renews = %d, want %d after second window", got, 2*nExts)
	}
}
