package core

import (
	"hash/fnv"
	"sort"
	"sync"
)

// nodeTable shards the base's node state (adapted and degraded maps) by a
// consistent hash of the node address, so adapt, renewal and reconcile
// traffic for different nodes proceeds under different locks. Lock order:
// a shard's mu may be held while taking b.mu or the scheduler's lock, never
// the other way around; no path holds two shard locks at once.
type nodeTable struct {
	shards []nodeShard
}

type nodeShard struct {
	mu       sync.Mutex
	adapted  map[string]*adaptedNode // by node addr
	degraded map[string]string       // node addr -> node id
}

func newNodeTable(n int) *nodeTable {
	if n <= 0 {
		n = 8
	}
	t := &nodeTable{shards: make([]nodeShard, n)}
	for i := range t.shards {
		t.shards[i].adapted = make(map[string]*adaptedNode)
		t.shards[i].degraded = make(map[string]string)
	}
	return t
}

func (t *nodeTable) shard(addr string) *nodeShard {
	h := fnv.New32a()
	h.Write([]byte(addr))
	return &t.shards[h.Sum32()%uint32(len(t.shards))]
}

// counts sums the adapted and degraded populations across shards.
func (t *nodeTable) counts() (adapted, degraded int) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		adapted += len(s.adapted)
		degraded += len(s.degraded)
		s.mu.Unlock()
	}
	return adapted, degraded
}

// adaptedAddrs lists adapted node addresses, sorted.
func (t *nodeTable) adaptedAddrs() []string {
	var out []string
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for addr := range s.adapted {
			out = append(out, addr)
		}
		s.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// degradedAddrs lists degraded node addresses, sorted.
func (t *nodeTable) degradedAddrs() []string {
	var out []string
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for addr := range s.degraded {
			out = append(out, addr)
		}
		s.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// allAdapted snapshots every adapted node.
func (t *nodeTable) allAdapted() []*adaptedNode {
	var out []*adaptedNode
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, n := range s.adapted {
			out = append(out, n)
		}
		s.mu.Unlock()
	}
	return out
}

// get returns the adapted node at addr, or nil.
func (t *nodeTable) get(addr string) *adaptedNode {
	s := t.shard(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adapted[addr]
}

// clear empties every shard and returns the nodes that were adapted.
func (t *nodeTable) clear() []*adaptedNode {
	var out []*adaptedNode
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, n := range s.adapted {
			out = append(out, n)
		}
		s.adapted = make(map[string]*adaptedNode)
		s.degraded = make(map[string]string)
		s.mu.Unlock()
	}
	return out
}

// perShardTargets groups adapted+degraded addresses by shard, each group
// sorted — the unit of parallelism for reconcile rounds.
func (t *nodeTable) perShardTargets() [][]string {
	out := make([][]string, len(t.shards))
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		group := make([]string, 0, len(s.adapted)+len(s.degraded))
		for addr := range s.adapted {
			group = append(group, addr)
		}
		for addr := range s.degraded {
			group = append(group, addr)
		}
		s.mu.Unlock()
		sort.Strings(group)
		out[i] = group
	}
	return out
}
