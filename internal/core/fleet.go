package core

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/transport"
)

// Fleet aggregation: the base's view of what every node's RPC surface is
// doing, without a scrape loop over 100k nodes. Nodes piggyback compact
// metric deltas (per-method RED counters plus trace-drop stats) on the
// midas.renewBatch responses they were sending anyway — the base asks with
// WantObs, so a node never volunteers trailing bytes an old base would choke
// on — and the base merges them into per-node and fleet-rollup views served
// at /fleet and over the base.fleet RPC (rendered live by `midasctl top`).
//
// Interop follows the PR 6/7 playbook: the new fields are optional trailing
// fields of the existing batch messages. Old nodes wire-decoding a WantObs
// request fail with ErrDecode, which the fabric already translates into a
// remembered per-peer gob fallback — and gob ignores unknown fields — so
// mixed fleets keep renewing; they simply contribute no observability.

// MethodBaseFleet serves the merged fleet observability view.
const MethodBaseFleet = "base.fleet"

type (
	// ObsMethodDelta is one method's RED delta since the node's last report:
	// calls served, errors, and summed latency nanoseconds.
	ObsMethodDelta struct {
		Method string
		Count  uint64
		Errors uint64
		SumNs  int64
	}
	// ObsReport is one node's piggybacked observability delta. All values are
	// deltas since the previous report, so the base can merge reports from
	// any mix of nodes without double counting.
	ObsReport struct {
		Methods      []ObsMethodDelta
		SpansDropped uint64
		SampledOut   uint64
		TailKept     uint64
	}

	// FleetMethod is one method's fleet-wide rollup row.
	FleetMethod struct {
		Method string
		Count  uint64
		Errors uint64
		SumNs  int64
		MeanNs int64
	}
	// FleetNode is one node's accumulated totals.
	FleetNode struct {
		Node             string
		Count            uint64
		Errors           uint64
		SumNs            int64
		SpansDropped     uint64
		SampledOut       uint64
		TailKept         uint64
		LastReportMillis int64
	}
	// FleetResp is the base.fleet report: per-method rollup, per-node totals,
	// the currently degraded nodes and how many obs reports were merged. The
	// rollup and the node rows are two groupings of the same deltas, so their
	// grand totals always agree.
	FleetResp struct {
		Methods  []FleetMethod
		Nodes    []FleetNode
		Degraded []string
		Reports  uint64
		// Overload is the base's overload-control status (concurrency limit,
		// queue depth, shed counters) when the control plane is enabled; nil
		// otherwise. FleetResp travels as gob, which tolerates the field's
		// absence in either direction, so old peers interoperate untouched.
		Overload *overload.Snapshot
	}
)

// fleetMethodAgg accumulates one (method) or (node) bucket.
type fleetMethodAgg struct {
	count  uint64
	errors uint64
	sumNs  int64
}

// fleetNodeAgg is one node's accumulated state.
type fleetNodeAgg struct {
	fleetMethodAgg
	spansDropped uint64
	sampledOut   uint64
	tailKept     uint64
	lastMillis   int64
}

// fleetView is the base-side merge target. The zero value is ready to use.
type fleetView struct {
	mu      sync.Mutex
	reports uint64
	nodes   map[string]*fleetNodeAgg
	rollup  map[string]*fleetMethodAgg
}

// merge folds one node's delta report in.
func (f *fleetView) merge(node string, rep ObsReport, atMillis int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.nodes == nil {
		f.nodes = make(map[string]*fleetNodeAgg)
		f.rollup = make(map[string]*fleetMethodAgg)
	}
	f.reports++
	n := f.nodes[node]
	if n == nil {
		n = &fleetNodeAgg{}
		f.nodes[node] = n
	}
	n.lastMillis = atMillis
	n.spansDropped += rep.SpansDropped
	n.sampledOut += rep.SampledOut
	n.tailKept += rep.TailKept
	for _, m := range rep.Methods {
		n.count += m.Count
		n.errors += m.Errors
		n.sumNs += m.SumNs
		r := f.rollup[m.Method]
		if r == nil {
			r = &fleetMethodAgg{}
			f.rollup[m.Method] = r
		}
		r.count += m.Count
		r.errors += m.Errors
		r.sumNs += m.SumNs
	}
}

// snapshot renders the view, sorted for stable output.
func (f *fleetView) snapshot() FleetResp {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := FleetResp{Reports: f.reports}
	for method, r := range f.rollup {
		row := FleetMethod{Method: method, Count: r.count, Errors: r.errors, SumNs: r.sumNs}
		if r.count > 0 {
			row.MeanNs = r.sumNs / int64(r.count)
		}
		out.Methods = append(out.Methods, row)
	}
	sort.Slice(out.Methods, func(i, j int) bool { return out.Methods[i].Method < out.Methods[j].Method })
	for node, n := range f.nodes {
		out.Nodes = append(out.Nodes, FleetNode{
			Node:             node,
			Count:            n.count,
			Errors:           n.errors,
			SumNs:            n.sumNs,
			SpansDropped:     n.spansDropped,
			SampledOut:       n.sampledOut,
			TailKept:         n.tailKept,
			LastReportMillis: n.lastMillis,
		})
	}
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].Node < out.Nodes[j].Node })
	return out
}

// FleetStatus returns the merged fleet observability view plus the currently
// degraded nodes.
func (b *Base) FleetStatus() FleetResp {
	resp := b.fleet.snapshot()
	resp.Degraded = b.Degraded()
	sort.Strings(resp.Degraded)
	if fn := b.overload.Load(); fn != nil {
		s := (*fn)()
		resp.Overload = &s
	}
	return resp
}

// SetOverload installs the overload-control status source rendered in
// FleetStatus (typically overload.Handler.Snapshot). Atomic, so it can be
// wired after the base is already serving.
func (b *Base) SetOverload(fn func() overload.Snapshot) {
	if fn == nil {
		b.overload.Store(nil)
		return
	}
	b.overload.Store(&fn)
}

// mergeObs folds a node's piggybacked report into the fleet view.
func (b *Base) mergeObs(node string, rep *ObsReport) {
	if rep == nil {
		return
	}
	b.fleet.merge(node, *rep, b.cfg.Clock.Now().UnixMilli())
}

// FleetHandler serves FleetStatus as JSON — mounted at /fleet on the base's
// observability listener.
func FleetHandler(b *Base) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(b.FleetStatus())
	})
}

// obsCum is one method's cumulative counters at the node, remembered so the
// next report sends only the delta. errs caches the method's error-counter
// handle so reports after the first neither rebuild the instrument name nor
// search the registry.
type obsCum struct {
	count  uint64
	errors uint64
	sumNs  int64
	errs   *metrics.Counter
}

// obsReport computes the node's delta since the last report from its own
// metrics registry (the server-side RED instruments) and tracer. Returns nil
// when there is nothing new to say, which costs zero bytes on the wire.
func (r *Receiver) obsReport() *ObsReport {
	r.mu.Lock()
	reg := r.reg
	tr := r.tracer
	r.mu.Unlock()
	if reg == nil && tr == nil {
		return nil
	}

	rep := &ObsReport{}
	r.obsMu.Lock()
	defer r.obsMu.Unlock()
	if reg != nil {
		if r.obsSent == nil {
			r.obsSent = make(map[string]obsCum)
		}
		// VisitHistograms over a full Snapshot: reports ride on every renewal
		// batch, and a snapshot's bucket copies and quantiles are pure garbage
		// when only the totals feed the delta.
		prefix := transport.REDSuffix(transport.REDServerPrefix, "ns", "")
		reg.VisitHistograms(func(name string, count uint64, sum int64) {
			method, ok := strings.CutPrefix(name, prefix)
			if !ok || method == "" {
				return
			}
			last := r.obsSent[method]
			if last.errs == nil {
				last.errs = reg.Counter(transport.REDSuffix(transport.REDServerPrefix, "errors", method))
			}
			cum := obsCum{
				count:  count,
				sumNs:  sum,
				errors: last.errs.Value(),
				errs:   last.errs,
			}
			d := ObsMethodDelta{
				Method: method,
				Count:  cum.count - last.count,
				Errors: cum.errors - last.errors,
				SumNs:  cum.sumNs - last.sumNs,
			}
			// Always store: on a zero delta cum equals the stored value, and
			// storing it anyway keeps the resolved errs handle cached.
			r.obsSent[method] = cum
			if d.Count == 0 && d.Errors == 0 && d.SumNs == 0 {
				return
			}
			rep.Methods = append(rep.Methods, d)
		})
		// Canonical order: the wire codec round-trips bit for bit and the
		// base's merge is order-independent either way.
		sort.Slice(rep.Methods, func(i, j int) bool { return rep.Methods[i].Method < rep.Methods[j].Method })
	}
	if tr != nil {
		dropped := tr.SpansDropped()
		sampledOut, tailKept := tr.SamplerStats()
		rep.SpansDropped = dropped - r.obsDropped
		rep.SampledOut = sampledOut - r.obsSampledOut
		rep.TailKept = tailKept - r.obsTailKept
		r.obsDropped, r.obsSampledOut, r.obsTailKept = dropped, sampledOut, tailKept
	}
	if len(rep.Methods) == 0 && rep.SpansDropped == 0 && rep.SampledOut == 0 && rep.TailKept == 0 {
		return nil
	}
	return rep
}
