package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/lease"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Batched RPC surface: at fleet scale the base coalesces per-node traffic —
// all of a node's due lease renewals ride one midas.renewBatch call, and the
// installs+revokes a reconcile diff (or a multi-extension adapt) produces for
// one node ride one midas.applyBatch call. Old peers that do not serve the
// batch methods are detected through ErrNoMethod and remembered, and the base
// falls back to the singleton RPCs for them.

// RPC method names of the batch surface.
const (
	MethodRenewBatch = "midas.renewBatch"
	MethodApplyBatch = "midas.applyBatch"
)

// Wire types for the batch surface.
type (
	// RenewBatchReq renews several leases at one node in one exchange.
	// WantObs asks the node to piggyback its observability delta on the
	// response; it rides as an optional trailing wire field (encoded only
	// when true) so requests to and from old peers keep their old bytes.
	RenewBatchReq struct {
		Items   []RenewExtReq
		WantObs bool
	}
	// RenewItemResp is one lease's renewal outcome; Err is the remote error
	// text ("" on success) so one bad lease does not fail its batch-mates.
	RenewItemResp struct {
		DurMillis int64
		Err       string
	}
	// RenewBatchResp carries the per-item outcomes, aligned with the request.
	// Obs is the piggybacked observability delta (fleet.go), present only
	// when the request asked for it — a node must never volunteer trailing
	// bytes to a base that would reject them.
	RenewBatchResp struct {
		Items []RenewItemResp
		Obs   *ObsReport
	}
	// ApplyBatchReq bundles the installs and revokes one reconcile diff (or
	// adapt round) produced for one node.
	ApplyBatchReq struct {
		Installs []InstallReq
		Revokes  []string
	}
	// InstallItemResp is one install's outcome.
	InstallItemResp struct {
		LeaseID string
		Err     string
	}
	// RevokeItemResp is one revoke's outcome; revoking an extension that is
	// already gone succeeds, like the singleton revoke.
	RevokeItemResp struct {
		Err string
	}
	// ApplyBatchResp carries per-item outcomes, aligned with the request.
	ApplyBatchResp struct {
		Installs []InstallItemResp
		Revokes  []RevokeItemResp
	}
)

// serveBatch registers the receiver's batch endpoints on mux.
func (r *Receiver) serveBatch(mux *transport.Mux) {
	transport.Register(mux, MethodRenewBatch, func(ctx context.Context, req RenewBatchReq) (RenewBatchResp, error) {
		resp := RenewBatchResp{Items: make([]RenewItemResp, len(req.Items))}
		for i, it := range req.Items {
			l, err := r.renewLease(ctx, lease.ID(it.LeaseID), time.Duration(it.DurMillis)*time.Millisecond)
			if err != nil {
				resp.Items[i].Err = err.Error()
				continue
			}
			resp.Items[i].DurMillis = l.Duration.Milliseconds()
		}
		if req.WantObs {
			resp.Obs = r.obsReport()
		}
		return resp, nil
	})
	transport.Register(mux, MethodApplyBatch, func(ctx context.Context, req ApplyBatchReq) (ApplyBatchResp, error) {
		resp := ApplyBatchResp{
			Installs: make([]InstallItemResp, len(req.Installs)),
			Revokes:  make([]RevokeItemResp, len(req.Revokes)),
		}
		for i, ins := range req.Installs {
			id, err := r.InstallCtx(ctx, ins.Signed, ins.BaseAddr, time.Duration(ins.DurMillis)*time.Millisecond)
			if err != nil {
				resp.Installs[i].Err = err.Error()
				continue
			}
			resp.Installs[i].LeaseID = string(id)
		}
		for i, name := range req.Revokes {
			if err := r.WithdrawCtx(ctx, name); err != nil && !errors.Is(err, ErrNotInstalled) {
				resp.Revokes[i].Err = err.Error()
			}
		}
		return resp, nil
	})
}

// renewNodeBatch is the scheduler's BatchRenewFunc: it renews every due lease
// held at node. A single due lease keeps the singleton midas.renew call (and
// its familiar one-span-per-renewal trace shape); multiple due leases
// coalesce into one midas.renewBatch call, falling back to singletons for old
// peers. A call-level error fails the whole batch — the scheduler's retry
// pacing takes over from there.
func (b *Base) renewNodeBatch(node string, items []lease.BatchItem) ([]lease.BatchResult, error) {
	metas, legacy, ok := b.renewMeta(node, items)
	if !ok {
		return nil, fmt.Errorf("core: node %s is no longer tracked", node)
	}
	if len(items) == 1 || legacy {
		out := make([]lease.BatchResult, len(items))
		for i, it := range items {
			out[i] = b.renewOne(node, it.ID, metas[i])
		}
		return out, nil
	}

	m, tr, wantObs := b.renewRefs()
	sp := tr.StartSpanFrom(trace.SpanContext{}, "lease.renewBatch")
	sp.Tag("node", node)
	// A tag, not an annotation: tags on a sampled-out span are free (the pool
	// keeps their backing array), while Annotatef pays fmt on every batch.
	sp.Tag("leases", strconv.Itoa(len(items)))
	req := RenewBatchReq{Items: make([]RenewExtReq, len(items)), WantObs: wantObs}
	for i, it := range items {
		req.Items[i] = RenewExtReq{LeaseID: string(it.ID), DurMillis: b.cfg.LeaseDur.Milliseconds()}
	}
	rctx, cancel := context.WithTimeout(context.Background(), b.cfg.CallTimeout)
	if sc := sp.Context(); sc.TraceID != "" {
		// Parent the rpc.call span under this batch span. Besides the trace
		// tree reading right, a sampled-out child rides the context's decision
		// instead of minting a root trace ID per call on the shared RNG.
		rctx = trace.NewContext(rctx, sc)
	}
	resp, err := transport.Invoke[RenewBatchReq, RenewBatchResp](rctx, b.caller, node, MethodRenewBatch, req)
	cancel()
	sp.End(err)
	if errors.Is(err, transport.ErrNoMethod) {
		// Old peer: remember it and renew one by one from now on.
		b.markLegacyRenew(node)
		m.batchFallbacks.Inc()
		out := make([]lease.BatchResult, len(items))
		for i, it := range items {
			out[i] = b.renewOne(node, it.ID, metas[i])
		}
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	m.renewBatches.Inc()
	m.renewBatchLeases.Add(uint64(len(items)))
	b.mergeObs(node, resp.Obs)

	out := make([]lease.BatchResult, len(items))
	for i, it := range items {
		out[i] = lease.BatchResult{ID: it.ID}
		var ierr error
		if i >= len(resp.Items) {
			ierr = fmt.Errorf("core: renew batch to %s: truncated response", node)
		} else if resp.Items[i].Err != "" {
			ierr = transport.NewRemoteError(MethodRenewBatch, resp.Items[i].Err)
		} else {
			out[i].Granted = time.Duration(resp.Items[i].DurMillis) * time.Millisecond
			if out[i].Granted <= 0 {
				out[i].Granted = b.cfg.LeaseDur
			}
		}
		out[i].Err = ierr
		// Each lease's renewal is still a span of the trace that installed
		// the extension, batched or not.
		meta := metas[i]
		lsp := tr.StartSpanFrom(meta.sc, "lease.renew")
		lsp.Tag("ext", meta.ext)
		lsp.Tag("node", meta.nodeID)
		lsp.End(ierr)
	}
	return out, nil
}

// renewMeta snapshots per-lease trace metadata (and the node's legacy flag)
// under the node's shard lock. The result is a slice aligned with items —
// this runs for every due batch across the fleet, and the map it used to
// build was the renewal window's single biggest allocation.
func (b *Base) renewMeta(node string, items []lease.BatchItem) ([]renewItemMeta, bool, bool) {
	s := b.nodes.shard(node)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.adapted[node]
	if n == nil {
		return nil, false, false
	}
	meta := make([]renewItemMeta, len(items))
	for i, it := range items {
		for name, g := range n.grants {
			if g.leaseID == it.ID {
				meta[i] = renewItemMeta{ext: name, nodeID: n.id, sc: n.spanCtxs[name]}
				break
			}
		}
	}
	return meta, n.legacyRenew, true
}

type renewItemMeta struct {
	ext    string
	nodeID string
	sc     trace.SpanContext
}

func (b *Base) markLegacyRenew(node string) {
	s := b.nodes.shard(node)
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.adapted[node]; n != nil {
		n.legacyRenew = true
	}
}

// renewOne performs a singleton midas.renew, preserving the pre-batching
// trace shape: one "lease.renew" span per renewal, a child of the push that
// installed the extension.
func (b *Base) renewOne(node string, id lease.ID, meta renewItemMeta) lease.BatchResult {
	tr := b.traceRef()
	lctx, lsp := tr.StartSpan(trace.NewContext(context.Background(), meta.sc), "lease.renew")
	lsp.Tag("ext", meta.ext)
	lsp.Tag("node", meta.nodeID)
	rctx, cancel := context.WithTimeout(lctx, b.cfg.CallTimeout)
	resp, err := transport.Invoke[RenewExtReq, RenewExtResp](rctx, b.caller, node, MethodRenewE, RenewExtReq{
		LeaseID:   string(id),
		DurMillis: b.cfg.LeaseDur.Milliseconds(),
	})
	cancel()
	lsp.End(err)
	if err != nil {
		return lease.BatchResult{ID: id, Err: err}
	}
	granted := time.Duration(resp.DurMillis) * time.Millisecond
	if granted <= 0 {
		granted = b.cfg.LeaseDur
	}
	return lease.BatchResult{ID: id, Granted: granted}
}

// applyToNode delivers installs and revokes to one node, batched into a
// single midas.applyBatch exchange when there is more than one operation and
// the peer supports it. It returns per-extension outcomes; push successes are
// logged (and counted) here, push failures and revoke outcomes are the
// caller's to log, mirroring the singleton paths.
func (b *Base) applyToNode(ctx context.Context, n *adaptedNode, installs []Extension, revokes []string) (installErrs, revokeErrs map[string]error) {
	installErrs = make(map[string]error, len(installs))
	revokeErrs = make(map[string]error, len(revokes))
	if len(installs)+len(revokes) == 0 {
		return installErrs, revokeErrs
	}

	s := b.nodes.shard(n.addr)
	s.mu.Lock()
	legacy := n.legacyApply
	s.mu.Unlock()

	singleton := func() {
		for _, ext := range installs {
			installErrs[ext.Name] = b.pushExtension(ctx, n, ext)
		}
		for _, name := range revokes {
			revokeErrs[name] = b.revokeExtension(ctx, n, name)
		}
	}
	if legacy || len(installs)+len(revokes) == 1 {
		singleton()
		return installErrs, revokeErrs
	}

	m := b.metricsRef()
	tr := b.traceRef()
	pctx, sp := tr.StartSpan(ctx, "base.pushBatch")
	sp.Tag("node", n.id)
	sp.Annotatef("%d installs, %d revokes", len(installs), len(revokes))

	req := ApplyBatchReq{Revokes: revokes}
	sent := make([]Extension, 0, len(installs))
	for _, ext := range installs {
		signed, err := b.signedFor(ext)
		if err != nil {
			installErrs[ext.Name] = err
			continue
		}
		req.Installs = append(req.Installs, InstallReq{
			Signed:    signed,
			BaseAddr:  b.cfg.Addr,
			DurMillis: b.cfg.LeaseDur.Milliseconds(),
		})
		sent = append(sent, ext)
	}

	ictx, cancel := context.WithTimeout(pctx, b.cfg.CallTimeout)
	resp, err := transport.Invoke[ApplyBatchReq, ApplyBatchResp](ictx, b.caller, n.addr, MethodApplyBatch, req)
	cancel()
	if errors.Is(err, transport.ErrNoMethod) {
		sp.Annotatef("peer has no batch surface; falling back to singletons")
		sp.End(nil)
		s.mu.Lock()
		n.legacyApply = true
		s.mu.Unlock()
		m.batchFallbacks.Inc()
		singleton()
		return installErrs, revokeErrs
	}
	// Capture the identity before End: a sampled-out span is recycled there,
	// and Context on the recycled handle would mint an ID for whatever span
	// owns the pooled storage next.
	batchSC := sp.Context()
	sp.End(err)
	if err != nil {
		werr := fmt.Errorf("core: apply batch to %s: %w", n.addr, err)
		for _, ext := range sent {
			installErrs[ext.Name] = werr
		}
		for _, name := range revokes {
			revokeErrs[name] = werr
		}
		return installErrs, revokeErrs
	}
	m.pushBatches.Inc()

	for i, ext := range sent {
		if i >= len(resp.Installs) {
			installErrs[ext.Name] = fmt.Errorf("core: apply batch to %s: truncated response", n.addr)
			continue
		}
		if e := resp.Installs[i].Err; e != "" {
			installErrs[ext.Name] = fmt.Errorf("core: push %q to %s: %w", ext.Name, n.addr, transport.NewRemoteError(MethodApplyBatch, e))
			continue
		}
		installErrs[ext.Name] = nil
		b.log("push", n.id, ext.Name, "")
		g := grantInfo{
			version:  ext.Version,
			leaseID:  lease.ID(resp.Installs[i].LeaseID),
			dur:      b.cfg.LeaseDur,
			deadline: b.cfg.Clock.Now().Add(b.cfg.LeaseDur),
		}
		if !b.trackGrant(n, ext.Name, g, b.cfg.LeaseDur, batchSC) {
			b.log("push", n.id, ext.Name, "node gone mid-push; lease left to expire")
		}
	}
	for i, name := range revokes {
		if i >= len(resp.Revokes) {
			revokeErrs[name] = fmt.Errorf("core: apply batch to %s: truncated response", n.addr)
			continue
		}
		if e := resp.Revokes[i].Err; e != "" {
			revokeErrs[name] = transport.NewRemoteError(MethodApplyBatch, e)
			continue
		}
		revokeErrs[name] = nil
	}
	return installErrs, revokeErrs
}
