package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/store"
)

// This file is the durable-state layer of the MIDAS lifecycle: both sides of
// the advertise→push→lease→revoke protocol checkpoint their runtime tables
// into a store.KV journal (journal + compact machinery reused from the
// movement database) so a crashed base or node restarts into the state it
// held, instead of stranding extensions or re-pushing everything from
// scratch. All deadlines are persisted as absolute instants — replaying a
// grant after a crash longer than its lease window restores it expired, so
// recovery converges exactly like an uninterrupted run.
//
// Journal layout (one KV key per entity, JSON values):
//
//	base journal      node/<addr>  -> NodeRecord   (adapted/degraded node,
//	                                                per-extension grants)
//	receiver journal  ext/<name>   -> InstallRecord (signed extension, lease)
//
// Both journals auto-compact, so the files stay proportional to the live
// state, not the update history. All journal types are nil-safe: a nil
// journal is a no-op, so bases and receivers persist unconditionally.

// journalAutoCompactEvery bounds journal growth: after this many writes the
// KV rewrites itself to one line per live key.
const journalAutoCompactEvery = 4096

const (
	nodeKeyPrefix = "node/"
	extKeyPrefix  = "ext/"
)

// GrantRecord is the durable view of one pushed extension's lease at the
// base: which version is out, under which lease, and when that lease lapses
// (absolute, so restarts never re-open expired windows).
type GrantRecord struct {
	Version        int    `json:"v"`
	LeaseID        string `json:"lease"`
	DurMillis      int64  `json:"dur"`
	DeadlineMillis int64  `json:"deadline"`
}

// NodeRecord is the durable view of one node the base has adapted (or, when
// Degraded, is holding for reconciliation once the node is reachable again).
type NodeRecord struct {
	ID       string                 `json:"id"`
	Degraded bool                   `json:"degraded,omitempty"`
	Exts     map[string]GrantRecord `json:"exts,omitempty"`
}

// InstallRecord is the durable view of one installed extension at the
// receiver: the signed payload (re-verified on replay), its originating base
// and the lease's absolute deadline.
type InstallRecord struct {
	Signed         SignedExtension `json:"signed"`
	BaseAddr       string          `json:"base"`
	LeaseID        string          `json:"lease"`
	DurMillis      int64           `json:"dur"`
	DeadlineMillis int64           `json:"deadline"`
}

// openStateKV opens (creating dir if needed) one journal file.
func openStateKV(dir, file string) (*store.KV, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: state dir %s: %w", dir, err)
	}
	kv, err := store.OpenKV(filepath.Join(dir, file))
	if err != nil {
		return nil, err
	}
	kv.SetAutoCompact(journalAutoCompactEvery)
	return kv, nil
}

// BaseJournal persists a base's distribution state under a state directory.
type BaseJournal struct {
	kv *store.KV
}

// OpenBaseJournal opens dir/base-state.kv, creating the directory as needed
// and replaying any existing journal.
func OpenBaseJournal(dir string) (*BaseJournal, error) {
	kv, err := openStateKV(dir, "base-state.kv")
	if err != nil {
		return nil, err
	}
	return &BaseJournal{kv: kv}, nil
}

// PutNode checkpoints one node's record. A nil journal is a no-op.
func (j *BaseJournal) PutNode(addr string, rec NodeRecord) error {
	if j == nil {
		return nil
	}
	v, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("core: journal node %s: %w", addr, err)
	}
	return j.kv.Put(nodeKeyPrefix+addr, v)
}

// DeleteNode drops one node's record. A nil journal is a no-op.
func (j *BaseJournal) DeleteNode(addr string) error {
	if j == nil {
		return nil
	}
	return j.kv.Delete(nodeKeyPrefix + addr)
}

// Nodes returns all journalled node records by address.
func (j *BaseJournal) Nodes() (map[string]NodeRecord, error) {
	if j == nil {
		return nil, nil
	}
	out := make(map[string]NodeRecord)
	for _, k := range j.kv.Keys() {
		addr, ok := strings.CutPrefix(k, nodeKeyPrefix)
		if !ok {
			continue
		}
		raw, ok := j.kv.Get(k)
		if !ok {
			continue
		}
		var rec NodeRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("core: journal node %s: %w", addr, err)
		}
		out[addr] = rec
	}
	return out, nil
}

// Compact rewrites the journal to the live state. A nil journal is a no-op.
func (j *BaseJournal) Compact() error {
	if j == nil {
		return nil
	}
	return j.kv.Compact()
}

// Close flushes and closes the journal. A nil journal is a no-op.
func (j *BaseJournal) Close() error {
	if j == nil {
		return nil
	}
	return j.kv.Close()
}

// ReceiverJournal persists a receiver's installed-extension state under a
// state directory.
type ReceiverJournal struct {
	kv *store.KV
}

// OpenReceiverJournal opens dir/receiver-state.kv, creating the directory as
// needed and replaying any existing journal.
func OpenReceiverJournal(dir string) (*ReceiverJournal, error) {
	kv, err := openStateKV(dir, "receiver-state.kv")
	if err != nil {
		return nil, err
	}
	return &ReceiverJournal{kv: kv}, nil
}

// PutExt checkpoints one installed extension. A nil journal is a no-op.
func (j *ReceiverJournal) PutExt(name string, rec InstallRecord) error {
	if j == nil {
		return nil
	}
	v, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("core: journal ext %s: %w", name, err)
	}
	return j.kv.Put(extKeyPrefix+name, v)
}

// UpdateDeadline rewrites one extension record's lease deadline (renewals are
// far more frequent than installs, so this avoids re-marshalling the signed
// payload at every call site). Unknown names are a no-op. A nil journal is a
// no-op.
func (j *ReceiverJournal) UpdateDeadline(name string, deadlineMillis int64) error {
	if j == nil {
		return nil
	}
	raw, ok := j.kv.Get(extKeyPrefix + name)
	if !ok {
		return nil
	}
	var rec InstallRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return fmt.Errorf("core: journal ext %s: %w", name, err)
	}
	rec.DeadlineMillis = deadlineMillis
	v, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("core: journal ext %s: %w", name, err)
	}
	return j.kv.Put(extKeyPrefix+name, v)
}

// DeleteExt drops one extension's record. A nil journal is a no-op.
func (j *ReceiverJournal) DeleteExt(name string) error {
	if j == nil {
		return nil
	}
	return j.kv.Delete(extKeyPrefix + name)
}

// Exts returns all journalled install records, sorted by extension name so
// replay order is deterministic.
func (j *ReceiverJournal) Exts() ([]InstallRecord, error) {
	if j == nil {
		return nil, nil
	}
	keys := j.kv.Keys()
	sort.Strings(keys)
	var out []InstallRecord
	for _, k := range keys {
		name, ok := strings.CutPrefix(k, extKeyPrefix)
		if !ok {
			continue
		}
		raw, ok := j.kv.Get(k)
		if !ok {
			continue
		}
		var rec InstallRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("core: journal ext %s: %w", name, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// Compact rewrites the journal to the live state. A nil journal is a no-op.
func (j *ReceiverJournal) Compact() error {
	if j == nil {
		return nil
	}
	return j.kv.Compact()
}

// Close flushes and closes the journal. A nil journal is a no-op.
func (j *ReceiverJournal) Close() error {
	if j == nil {
		return nil
	}
	return j.kv.Close()
}
