package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/sign"
	"repro/internal/trace"
	"repro/internal/transport"
)

// TestObsPiggybackOverRPC drives the node side end to end: a receiver whose
// serving handler is RED-instrumented answers midas.renewBatch, and when the
// request asks (WantObs) the response carries the delta of everything the
// node's instruments saw since the last report — and only the delta.
func TestObsPiggybackOverRPC(t *testing.T) {
	n := newTestNode(t)
	reg := metrics.New()
	tracer := trace.New(1)
	tracer.SetSampler(trace.SamplerConfig{Rate: 0, Seed: 1})
	n.receiver.Instrument(reg)
	n.receiver.Trace(tracer)
	mux := transport.NewMux()
	n.receiver.ServeOn(mux)
	fabric := transport.NewInProc()
	stop, err := fabric.Serve("node-1", transport.REDHandling(mux, reg))
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	caller := fabric.Node("base-1")
	ctx := context.Background()

	signed, err := Sign(n.signer, builtinExt("obs-ext", 1))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := transport.Invoke[InstallReq, InstallResp](ctx, caller, "node-1", MethodInstall, InstallReq{
		Signed: signed, BaseAddr: "base-1", DurMillis: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Without WantObs the response must carry nothing extra.
	bare, err := transport.Invoke[RenewBatchReq, RenewBatchResp](ctx, caller, "node-1", MethodRenewBatch, RenewBatchReq{
		Items: []RenewExtReq{{LeaseID: inst.LeaseID, DurMillis: 60_000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Obs != nil {
		t.Fatalf("unasked response carried obs: %+v", bare.Obs)
	}

	resp, err := transport.Invoke[RenewBatchReq, RenewBatchResp](ctx, caller, "node-1", MethodRenewBatch, RenewBatchReq{
		Items:   []RenewExtReq{{LeaseID: inst.LeaseID, DurMillis: 60_000}},
		WantObs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Obs == nil {
		t.Fatal("WantObs response carried no report")
	}
	deltas := map[string]ObsMethodDelta{}
	for _, m := range resp.Obs.Methods {
		deltas[m.Method] = m
	}
	// The install and both renewBatch calls went through the RED handler; the
	// report must carry their counts (the in-flight renewBatch observes after
	// the handler returns, so the report sees the previous two).
	if d := deltas[MethodInstall]; d.Count != 1 || d.SumNs < 0 {
		t.Fatalf("install delta = %+v, want count 1", d)
	}
	if d := deltas[MethodRenewBatch]; d.Count != 1 {
		t.Fatalf("renewBatch delta = %+v, want count 1 (the un-instrumented probe)", d)
	}
	if resp.Obs.SampledOut == 0 {
		t.Fatalf("report sampled-out = 0, want the receiver's dropped spans counted")
	}

	// The next report carries only what happened since: install must be gone.
	resp2, err := transport.Invoke[RenewBatchReq, RenewBatchResp](ctx, caller, "node-1", MethodRenewBatch, RenewBatchReq{
		Items:   []RenewExtReq{{LeaseID: inst.LeaseID, DurMillis: 60_000}},
		WantObs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Obs == nil {
		t.Fatal("second WantObs response carried no report")
	}
	for _, m := range resp2.Obs.Methods {
		if m.Method == MethodInstall {
			t.Fatalf("install re-reported in the second delta: %+v", m)
		}
		if m.Method == MethodRenewBatch && m.Count != 1 {
			t.Fatalf("second renewBatch delta = %+v, want exactly the one call since", m)
		}
	}
}

// TestFleetRollupMatchesNodeTotals checks the base-side merge invariant the
// acceptance scenario leans on: the per-method rollup and the per-node rows
// are two groupings of the same deltas, so their grand totals always agree —
// and an un-instrumented base never asks for reports at all.
func TestFleetRollupMatchesNodeTotals(t *testing.T) {
	const nodes = 3
	clk := clock.NewManual(time.Unix(1000, 0))
	caller := newStormCaller()
	caller.obsPerBatch = true
	b, _ := newStormBase(t, clk, caller, nil, 8, 2)
	for i := 0; i < 4; i++ {
		if err := b.AddExtension(noopExt(fmt.Sprintf("ext-%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nodes; i++ {
		if err := b.AdaptNode(fmt.Sprintf("robot-%d", i), fmt.Sprintf("robot-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	drainRenewals(t, clk, b, 30*time.Second, 30*time.Second)

	st := b.FleetStatus()
	if st.Reports == 0 || len(st.Nodes) != nodes {
		t.Fatalf("fleet = %d reports over %d nodes, want >0 over %d", st.Reports, len(st.Nodes), nodes)
	}
	var mCount, nCount, mErrs, nErrs uint64
	var mSum, nSum int64
	for _, m := range st.Methods {
		mCount += m.Count
		mErrs += m.Errors
		mSum += m.SumNs
		if m.Count > 0 && m.MeanNs != m.SumNs/int64(m.Count) {
			t.Fatalf("method %s mean %d != %d/%d", m.Method, m.MeanNs, m.SumNs, m.Count)
		}
	}
	for _, n := range st.Nodes {
		nCount += n.Count
		nErrs += n.Errors
		nSum += n.SumNs
		if n.SpansDropped != 1 {
			t.Fatalf("node %s dropped = %d, want the synthetic 1 per report", n.Node, n.SpansDropped)
		}
		if n.LastReportMillis == 0 {
			t.Fatalf("node %s has no report timestamp", n.Node)
		}
	}
	if mCount != nCount || mErrs != nErrs || mSum != nSum {
		t.Fatalf("rollup totals (%d,%d,%d) != node totals (%d,%d,%d)",
			mCount, mErrs, mSum, nCount, nErrs, nSum)
	}

	// An un-instrumented base must not ask: traffic stays byte-identical to
	// the pre-observability generation.
	caller2 := newStormCaller()
	caller2.obsPerBatch = true
	clk2 := clock.NewManual(time.Unix(1000, 0))
	b2 := newStormBaseUninstrumented(t, clk2, caller2)
	if err := b2.AddExtension(noopExt("ext-0", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b2.AdaptNode("robot-x", "robot-x"); err != nil {
		t.Fatal(err)
	}
	for elapsed := time.Duration(0); elapsed < 30*time.Second; elapsed += 10 * time.Second {
		clk2.Advance(10 * time.Second)
		waitUntil(t, "renewals quiesced", b2.RenewalsQuiesced)
	}
	if got := caller.wantObsSeen(); got == 0 {
		t.Fatal("instrumented base never asked for obs")
	}
	if got := caller2.wantObsSeen(); got != 0 {
		t.Fatalf("un-instrumented base asked for obs %d times", got)
	}
	if st2 := b2.FleetStatus(); st2.Reports != 0 {
		t.Fatalf("un-instrumented base merged %d reports", st2.Reports)
	}
}

// newStormBaseUninstrumented is newStormBase without the metrics registry:
// the negative control for the WantObs gate.
func newStormBaseUninstrumented(t *testing.T, clk clock.Clock, caller transport.Caller) *Base {
	t.Helper()
	signer, err := sign.NewSigner("hall-2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBase(BaseConfig{
		Name:          "hall-2",
		Addr:          "base-2",
		Caller:        caller,
		Signer:        signer,
		Clock:         clk,
		LeaseDur:      time.Minute,
		RenewFraction: 0.5,
		RenewRetries:  1,
		RenewBatch:    8,
		RenewWorkers:  2,
		CallTimeout:   time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}
