// Package core implements MIDAS, the extension-management layer of the
// platform (§3.2): extension bases discover newly arrived nodes and push
// signed extensions to them; extension receivers (the adaptation service each
// mobile node carries) verify, sandbox and weave the extensions, hold them
// under leases, and autonomously withdraw them when the base stops renewing —
// making every adaptation local in time and space.
package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/aop"
	"repro/internal/sandbox"
	"repro/internal/sign"
)

// AdviceSpec is the wire form of one crosscut action. Exactly one of Builtin
// or Code must be set: Builtin names an advice factory compiled into the
// receiving node (configured infrastructure extensions, like the paper's
// access-control policies), Code carries mobile LVM bytecode executed in the
// aspect sandbox (functionality the node did not carry).
type AdviceSpec struct {
	Name    string
	Kind    string // "call-before", "call-after", "field-get", "field-set", "throw", "handle"
	Pattern string // crosscut signature pattern

	Builtin string
	Config  map[string]string

	Code string // LVM assembly; see CompileAdvice for the required shape
}

// Advice kinds accepted in AdviceSpec.Kind.
const (
	KindCallBefore = "call-before"
	KindCallAfter  = "call-after"
	KindFieldGet   = "field-get"
	KindFieldSet   = "field-set"
	KindThrow      = "throw"
	KindHandle     = "handle"
)

// adviceKind maps wire kinds onto the aop model.
func adviceKind(kind string) (aop.When, aop.Kind, error) {
	switch kind {
	case KindCallBefore:
		return aop.Before, aop.MethodEntry, nil
	case KindCallAfter:
		return aop.After, aop.MethodExit, nil
	case KindFieldGet:
		return aop.After, aop.FieldGet, nil
	case KindFieldSet:
		return aop.Before, aop.FieldSet, nil
	case KindThrow:
		return aop.Before, aop.ExceptionThrow, nil
	case KindHandle:
		return aop.Before, aop.ExceptionHandler, nil
	default:
		return 0, 0, fmt.Errorf("core: unknown advice kind %q", kind)
	}
}

// Extension is the unit MIDAS distributes: a named, versioned bundle of
// advice plus the capabilities it needs and the implicit extensions it
// depends on.
type Extension struct {
	ID       string // unique per extension instance
	Name     string // aspect name at the receiver; one active version per name
	Version  int
	Priority int // weaving priority (lower runs first)

	Advices  []AdviceSpec
	Requires []string // implicit extensions (builtin bundle names) to auto-install
	Caps     []string // requested sandbox capabilities
	// Flows declares the information flows the extension's advice is
	// permitted to exercise, as "source->sink" capability rules (e.g.
	// "store->net"). Admission infers the actual flows from the bytecode and
	// refuses any inferred flow not declared here — holding both the store
	// and net capabilities does not imply permission to move data from one
	// to the other.
	Flows []string
	Meta  map[string]string
}

// Validate checks structural well-formedness before signing or installing.
func (e *Extension) Validate() error {
	if e.ID == "" || e.Name == "" {
		return fmt.Errorf("core: extension needs ID and Name")
	}
	if len(e.Advices) == 0 {
		return fmt.Errorf("core: extension %q has no advice", e.Name)
	}
	for i, a := range e.Advices {
		if _, _, err := adviceKind(a.Kind); err != nil {
			return fmt.Errorf("core: extension %q advice %d: %w", e.Name, i, err)
		}
		if a.Pattern == "" {
			return fmt.Errorf("core: extension %q advice %d: empty pattern", e.Name, i)
		}
		if _, err := aop.ParsePattern(a.Pattern); err != nil {
			return fmt.Errorf("core: extension %q advice %d: %w", e.Name, i, err)
		}
		hasBuiltin := a.Builtin != ""
		hasCode := a.Code != ""
		if hasBuiltin == hasCode {
			return fmt.Errorf("core: extension %q advice %d: exactly one of Builtin or Code required", e.Name, i)
		}
	}
	for _, f := range e.Flows {
		if !validFlowRule(f) {
			return fmt.Errorf("core: extension %q: malformed flow rule %q (want \"source->sink\")", e.Name, f)
		}
	}
	return nil
}

// validFlowRule checks the "source->sink" shape with non-empty capability
// names on both sides.
func validFlowRule(rule string) bool {
	src, sink, ok := strings.Cut(rule, "->")
	return ok && src != "" && sink != "" &&
		!strings.Contains(src, ">") && !strings.Contains(sink, ">")
}

// Capabilities converts the requested capability names.
func (e *Extension) Capabilities() []sandbox.Capability {
	out := make([]sandbox.Capability, len(e.Caps))
	for i, c := range e.Caps {
		out[i] = sandbox.Capability(c)
	}
	return out
}

// Canonical returns the deterministic byte encoding that signatures cover
// (JSON: map keys are sorted, field order is fixed).
func (e *Extension) Canonical() ([]byte, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("core: canonical encoding: %w", err)
	}
	return b, nil
}

// SignedExtension is an extension plus its originator's signature over the
// canonical encoding.
type SignedExtension struct {
	Ext Extension
	Sig sign.Signature
}

// Sign produces a SignedExtension using signer.
func Sign(signer *sign.Signer, ext Extension) (SignedExtension, error) {
	if err := ext.Validate(); err != nil {
		return SignedExtension{}, err
	}
	payload, err := ext.Canonical()
	if err != nil {
		return SignedExtension{}, err
	}
	return SignedExtension{Ext: ext, Sig: signer.Sign(payload)}, nil
}

// Verify checks the signature against trust.
func (s *SignedExtension) Verify(trust *sign.TrustStore) error {
	payload, err := s.Ext.Canonical()
	if err != nil {
		return err
	}
	return trust.Verify(payload, s.Sig)
}
