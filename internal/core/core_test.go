package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/aop"
	"repro/internal/clock"
	"repro/internal/lvm"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/weave"
)

// testNode bundles a receiver with its weaver and a trusted signer.
type testNode struct {
	weaver   *weave.Weaver
	receiver *Receiver
	signer   *sign.Signer
	clk      *clock.Manual
	hostLog  *[]string
}

func newTestNode(t *testing.T) *testNode {
	t.Helper()
	signer, err := sign.NewSigner("hall-1")
	if err != nil {
		t.Fatal(err)
	}
	trust := sign.NewTrustStore()
	trust.Trust("hall-1", signer.PublicKey())
	clk := clock.NewManual(time.Unix(1000, 0))
	weaver := weave.New()

	var hostLog []string
	host := lvm.HostMap{
		"log.info": func(args []lvm.Value) (lvm.Value, error) {
			hostLog = append(hostLog, args[0].String())
			return lvm.Nil(), nil
		},
		"net.post": func(args []lvm.Value) (lvm.Value, error) {
			hostLog = append(hostLog, "net.post")
			return lvm.Bool(true), nil
		},
	}

	builtins := NewBuiltins()
	builtins.Register("count", func(env *Env, cfg map[string]string) (aop.Body, error) {
		return aop.BodyFunc(func(ctx *aop.Context) error {
			_, err := env.Host.HostCall("log.info", []lvm.Value{lvm.Str("count:" + ctx.Sig.Method)})
			return err
		}), nil
	})
	builtins.RegisterBundle(Extension{
		ID:      "system/base-bundle",
		Name:    "base-bundle",
		Version: 1,
		Advices: []AdviceSpec{{
			Name:    "bundled",
			Kind:    KindCallBefore,
			Pattern: "*.*(..)",
			Builtin: "count",
		}},
	})

	receiver, err := NewReceiver(ReceiverConfig{
		NodeName: "robot1",
		Addr:     "robot1",
		Weaver:   weaver,
		Trust:    trust,
		Policy:   sandbox.AllowAll(),
		Clock:    clk,
		Host:     host,
		Builtins: builtins,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &testNode{weaver: weaver, receiver: receiver, signer: signer, clk: clk, hostLog: &hostLog}
}

func builtinExt(name string, version int) Extension {
	return Extension{
		ID:      "ext/" + name,
		Name:    name,
		Version: version,
		Advices: []AdviceSpec{{
			Name:    "advice",
			Kind:    KindCallBefore,
			Pattern: "Motor.*(..)",
			Builtin: "count",
		}},
		Caps: []string{"log"},
	}
}

func TestInstallWeavesAspect(t *testing.T) {
	n := newTestNode(t)
	site := n.weaver.RegisterMethodSite(aop.MethodEntry, aop.Signature{Class: "Motor", Method: "rotate", Return: "void"})

	signed, err := Sign(n.signer, builtinExt("monitor", 1))
	if err != nil {
		t.Fatal(err)
	}
	leaseID, err := n.receiver.Install(signed, "base-1", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if leaseID == "" {
		t.Fatal("no lease issued")
	}
	if !site.Active() {
		t.Fatal("aspect not woven")
	}
	if err := site.Dispatch(&aop.Context{Sig: site.Sig}); err != nil {
		t.Fatal(err)
	}
	if len(*n.hostLog) != 1 || (*n.hostLog)[0] != "count:rotate" {
		t.Errorf("hostLog = %v", *n.hostLog)
	}
	infos := n.receiver.Installed()
	if len(infos) != 1 || infos[0].Name != "monitor" || infos[0].BaseAddr != "base-1" {
		t.Errorf("Installed = %+v", infos)
	}
}

func TestInstallRejectsUntrusted(t *testing.T) {
	n := newTestNode(t)
	mallory, _ := sign.NewSigner("mallory")
	signed, err := Sign(mallory, builtinExt("evil", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.receiver.Install(signed, "base-x", time.Minute); !errors.Is(err, sign.ErrUntrustedSigner) {
		t.Fatalf("want untrusted, got %v", err)
	}
	if n.receiver.Has("evil") {
		t.Error("untrusted extension installed")
	}
	acts := n.receiver.Activity()
	if len(acts) != 1 || acts[0].Event != "reject" {
		t.Errorf("activity = %+v", acts)
	}
}

func TestInstallRejectsTampered(t *testing.T) {
	n := newTestNode(t)
	signed, err := Sign(n.signer, builtinExt("monitor", 1))
	if err != nil {
		t.Fatal(err)
	}
	signed.Ext.Advices[0].Pattern = "*.*(..)" // tamper after signing
	if _, err := n.receiver.Install(signed, "base-1", time.Minute); !errors.Is(err, sign.ErrBadSignature) {
		t.Fatalf("want bad signature, got %v", err)
	}
}

func TestLeaseExpiryWithdraws(t *testing.T) {
	n := newTestNode(t)
	signed, _ := Sign(n.signer, builtinExt("monitor", 1))
	if _, err := n.receiver.Install(signed, "base-1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if !n.receiver.Has("monitor") {
		t.Fatal("not installed")
	}
	n.clk.Advance(11 * time.Second)
	n.receiver.Grantor().ExpireNow()
	if n.receiver.Has("monitor") {
		t.Fatal("extension survived lease expiry")
	}
	if n.weaver.Has("monitor") {
		t.Fatal("aspect survived lease expiry")
	}
	// Activity shows install then expire.
	var events []string
	for _, a := range n.receiver.Activity() {
		events = append(events, a.Event)
	}
	if strings.Join(events, ",") != "install,expire" {
		t.Errorf("events = %v", events)
	}
}

func TestRenewKeepsAlive(t *testing.T) {
	n := newTestNode(t)
	signed, _ := Sign(n.signer, builtinExt("monitor", 1))
	id, err := n.receiver.Install(signed, "base-1", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	n.clk.Advance(8 * time.Second)
	if err := n.receiver.Renew(id, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	n.clk.Advance(8 * time.Second)
	n.receiver.Grantor().ExpireNow()
	if !n.receiver.Has("monitor") {
		t.Fatal("renewed extension expired")
	}
}

func TestReplaceRequiresHigherVersion(t *testing.T) {
	n := newTestNode(t)
	signed, _ := Sign(n.signer, builtinExt("monitor", 2))
	id, err := n.receiver.Install(signed, "base-1", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Same version from the same base is an idempotent re-push (a retry
	// whose first response was lost): it refreshes the lease and returns
	// the original handle.
	signed2, _ := Sign(n.signer, builtinExt("monitor", 2))
	id2, err := n.receiver.Install(signed2, "base-1", time.Minute)
	if err != nil {
		t.Fatalf("idempotent re-push: %v", err)
	}
	if id2 != id {
		t.Fatalf("re-push returned lease %q, want original %q", id2, id)
	}
	// Same version from a different base is a conflict.
	if _, err := n.receiver.Install(signed2, "base-2", time.Minute); err == nil {
		t.Fatal("same version from another base should fail")
	}
	// A lower version is a stale duplicate.
	signed1, _ := Sign(n.signer, builtinExt("monitor", 1))
	if _, err := n.receiver.Install(signed1, "base-1", time.Minute); err == nil {
		t.Fatal("stale lower version should fail")
	}
	// Higher version replaces.
	signed3, _ := Sign(n.signer, builtinExt("monitor", 3))
	if _, err := n.receiver.Install(signed3, "base-1", time.Minute); err != nil {
		t.Fatal(err)
	}
	infos := n.receiver.Installed()
	if len(infos) != 1 || infos[0].Version != 3 {
		t.Errorf("Installed = %+v", infos)
	}
}

func TestImplicitExtensionAutoInstalled(t *testing.T) {
	n := newTestNode(t)
	ext := builtinExt("needsbundle", 1)
	ext.Requires = []string{"base-bundle"}
	signed, _ := Sign(n.signer, ext)
	if _, err := n.receiver.Install(signed, "base-1", time.Minute); err != nil {
		t.Fatal(err)
	}
	if !n.receiver.Has("base-bundle") {
		t.Fatal("implicit extension not installed")
	}
	infos := n.receiver.Installed()
	if len(infos) != 2 {
		t.Fatalf("Installed = %+v", infos)
	}
	for _, info := range infos {
		if info.Name == "base-bundle" && !info.System {
			t.Error("implicit extension not marked system")
		}
	}
	// Withdrawing the dependent removes the implicit one too.
	if err := n.receiver.Withdraw("needsbundle"); err != nil {
		t.Fatal(err)
	}
	if n.receiver.Has("base-bundle") {
		t.Error("implicit extension survived last dependent")
	}
}

func TestImplicitSharedByDependents(t *testing.T) {
	n := newTestNode(t)
	e1 := builtinExt("dep1", 1)
	e1.Requires = []string{"base-bundle"}
	e2 := builtinExt("dep2", 1)
	e2.Requires = []string{"base-bundle"}
	s1, _ := Sign(n.signer, e1)
	s2, _ := Sign(n.signer, e2)
	if _, err := n.receiver.Install(s1, "base-1", time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := n.receiver.Install(s2, "base-1", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := n.receiver.Withdraw("dep1"); err != nil {
		t.Fatal(err)
	}
	if !n.receiver.Has("base-bundle") {
		t.Fatal("implicit extension removed while dep2 still needs it")
	}
	if err := n.receiver.Withdraw("dep2"); err != nil {
		t.Fatal(err)
	}
	if n.receiver.Has("base-bundle") {
		t.Fatal("implicit extension survived all dependents")
	}
}

func TestMissingRequireRejects(t *testing.T) {
	n := newTestNode(t)
	ext := builtinExt("needy", 1)
	ext.Requires = []string{"no-such-bundle"}
	signed, _ := Sign(n.signer, ext)
	if _, err := n.receiver.Install(signed, "base-1", time.Minute); err == nil {
		t.Fatal("missing implicit bundle should reject")
	}
}

func TestPolicyDeniesCapability(t *testing.T) {
	signer, _ := sign.NewSigner("hall-1")
	trust := sign.NewTrustStore()
	trust.Trust("hall-1", signer.PublicKey())
	builtins := NewBuiltins()
	builtins.Register("count", func(*Env, map[string]string) (aop.Body, error) {
		return aop.BodyFunc(func(*aop.Context) error { return nil }), nil
	})
	r, err := NewReceiver(ReceiverConfig{
		NodeName: "n",
		Weaver:   weave.New(),
		Trust:    trust,
		Policy:   sandbox.Allowlist(sandbox.CapLog), // no net
		Host:     lvm.HostMap{},
		Builtins: builtins,
	})
	if err != nil {
		t.Fatal(err)
	}
	ext := builtinExt("greedy", 1)
	ext.Caps = []string{"net"}
	signed, _ := Sign(signer, ext)
	if _, err := r.Install(signed, "base-1", time.Minute); err == nil {
		t.Fatal("policy should reject ungrantable capability")
	}
}

func TestMobileCodeAdvice(t *testing.T) {
	n := newTestNode(t)
	site := n.weaver.RegisterMethodSite(aop.MethodEntry, aop.Signature{
		Class: "Motor", Method: "rotate", Return: "void", Params: []string{"int"},
	})
	// Mobile LVM advice: veto rotations above 90 degrees.
	ext := Extension{
		ID:      "ext/limit",
		Name:    "limit",
		Version: 1,
		Advices: []AdviceSpec{{
			Name:    "limit-rotate",
			Kind:    KindCallBefore,
			Pattern: "Motor.rotate(..)",
			Code: `
class Ext
  method void advice()
    push 0
    hostcall ctx.arg 1
    push 90
    gt
    jmpf ok
    push "rotation too large"
    hostcall ctx.abort 1
    pop
  ok:
    retv
  end
end`,
		}},
	}
	signed, err := Sign(n.signer, ext)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.receiver.Install(signed, "base-1", time.Minute); err != nil {
		t.Fatal(err)
	}

	ctx := &aop.Context{Sig: site.Sig, Args: []lvm.Value{lvm.Int(45)}}
	if err := site.Dispatch(ctx); err != nil {
		t.Fatalf("45 degrees should pass: %v", err)
	}
	ctx2 := &aop.Context{Sig: site.Sig, Args: []lvm.Value{lvm.Int(120)}}
	err = site.Dispatch(ctx2)
	if err == nil || !strings.Contains(err.Error(), "rotation too large") {
		t.Fatalf("120 degrees should be vetoed, got %v", err)
	}
}

func TestMobileCodeSandboxed(t *testing.T) {
	n := newTestNode(t)
	n.weaver.RegisterMethodSite(aop.MethodEntry, aop.Signature{Class: "Motor", Method: "rotate", Return: "void"})
	// Mobile code that tries to use the net without requesting the cap.
	ext := Extension{
		ID:      "ext/sneaky",
		Name:    "sneaky",
		Version: 1,
		Advices: []AdviceSpec{{
			Name:    "leak",
			Kind:    KindCallBefore,
			Pattern: "Motor.*(..)",
			Code: `
class Ext
  method void advice()
    hostcall net.post 0
    pop
  end
end`,
		}},
		// Note: no Caps requested.
	}
	signed, _ := Sign(n.signer, ext)
	// The pre-weave static analysis catches the undeclared capability before
	// the advice is ever woven, let alone run.
	if _, err := n.receiver.Install(signed, "base-1", time.Minute); err == nil ||
		!strings.Contains(err.Error(), "beyond grant") {
		t.Fatalf("want pre-weave capability rejection, got %v", err)
	}
	site := n.weaver.RegisterMethodSite(aop.MethodEntry, aop.Signature{Class: "Motor", Method: "stop", Return: "void"})
	if err := site.Dispatch(&aop.Context{Sig: site.Sig}); err != nil {
		t.Fatalf("rejected extension still intercepts: %v", err)
	}
	if len(*n.hostLog) != 0 {
		t.Error("gated call leaked through")
	}
}

func TestMobileCodeRuntimeSandboxDefense(t *testing.T) {
	// Defense in depth: even if an over-privileged advice body is compiled
	// against a node host (bypassing install-time analysis), the sandbox still
	// refuses the call at run time and the violation names the missing
	// capability and the granted set.
	var hostLog []string
	inner := lvm.HostMap{
		"net.post": func(args []lvm.Value) (lvm.Value, error) {
			hostLog = append(hostLog, "net.post")
			return lvm.Bool(true), nil
		},
	}
	host := sandbox.NewHost(inner, sandbox.NewPerms())
	body, err := CompileAdvice(`
class Ext
  method void advice()
    hostcall net.post 0
    pop
  end
end`, host)
	if err != nil {
		t.Fatal(err)
	}
	err = body.Exec(&aop.Context{Sig: aop.Signature{Class: "Motor", Method: "rotate"}})
	var v *sandbox.Violation
	if !errors.As(err, &v) {
		t.Fatalf("want sandbox violation, got %v", err)
	}
	if v.Capability != sandbox.CapNet {
		t.Errorf("violation names cap %q, want net", v.Capability)
	}
	if len(hostLog) != 0 {
		t.Error("gated call leaked through")
	}
}

func TestShutdownBodyRuns(t *testing.T) {
	n := newTestNode(t)
	shut := false
	n.receiver.cfg.Builtins.Register("shutter", func(*Env, map[string]string) (aop.Body, error) {
		return &shutterBody{onShutdown: func() { shut = true }}, nil
	})
	ext := builtinExt("s", 1)
	ext.Advices[0].Builtin = "shutter"
	signed, _ := Sign(n.signer, ext)
	if _, err := n.receiver.Install(signed, "base-1", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := n.receiver.Withdraw("s"); err != nil {
		t.Fatal(err)
	}
	if !shut {
		t.Error("shutdown procedure did not run")
	}
}

type shutterBody struct {
	onShutdown func()
}

func (s *shutterBody) Exec(*aop.Context) error { return nil }
func (s *shutterBody) Shutdown()               { s.onShutdown() }

func TestExtensionValidate(t *testing.T) {
	good := builtinExt("x", 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Extension){
		func(e *Extension) { e.ID = "" },
		func(e *Extension) { e.Name = "" },
		func(e *Extension) { e.Advices = nil },
		func(e *Extension) { e.Advices[0].Kind = "weird" },
		func(e *Extension) { e.Advices[0].Pattern = "" },
		func(e *Extension) { e.Advices[0].Pattern = "(((" },
		func(e *Extension) { e.Advices[0].Builtin = "" },
		func(e *Extension) { e.Advices[0].Code = "x" /* both set */ },
	}
	for i, mutate := range cases {
		e := builtinExt("x", 1)
		mutate(&e)
		if err := e.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestCompileAdviceErrors(t *testing.T) {
	cases := []string{
		"not assembly at all (",
		"class NotExt\nmethod void advice()\nretv\nend\nend",
		"class Ext\nmethod void other()\nretv\nend\nend",
		"class Ext\nmethod void advice(int x)\nretv\nend\nend",
	}
	for i, src := range cases {
		if _, err := CompileAdvice(src, nil); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestMalformedMobileCodeRejected(t *testing.T) {
	n := newTestNode(t)
	// Assembles fine but fails bytecode verification: pops an empty stack.
	ext := Extension{
		ID:      "ext/broken",
		Name:    "broken",
		Version: 1,
		Advices: []AdviceSpec{{
			Name:    "bad",
			Kind:    KindCallBefore,
			Pattern: "*.*(..)",
			Code: `
class Ext
  method void advice()
    pop
    retv
  end
end`,
		}},
	}
	signed, err := Sign(n.signer, ext)
	if err != nil {
		t.Fatal(err)
	}
	_, err = n.receiver.Install(signed, "base-1", time.Minute)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("verifier did not reject malformed code: %v", err)
	}
	if n.receiver.Has("broken") {
		t.Fatal("malformed extension installed")
	}
}
