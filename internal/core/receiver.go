package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/aop"
	"repro/internal/clock"
	"repro/internal/lease"
	"repro/internal/lvm"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/weave"
)

// AdaptationService is the registry service type receivers advertise under.
const AdaptationService = "midas.adaptation"

// ErrNotInstalled reports an operation on an extension that is not installed.
// The wire revoke handler treats it as already-done so a base retrying a
// revocation whose response was lost stays idempotent.
var ErrNotInstalled = errors.New("not installed")

func init() {
	// Let errors.Is(err, ErrNotInstalled) hold for remote errors too, on
	// every fabric.
	transport.RegisterRemoteSentinel(ErrNotInstalled)
}

// ReceiverConfig assembles the dependencies of an adaptation service.
type ReceiverConfig struct {
	NodeName string
	Addr     string // transport address this receiver serves on
	Weaver   *weave.Weaver
	Trust    *sign.TrustStore
	Policy   sandbox.Policy
	Clock    clock.Clock
	Host     lvm.Host // raw node host; gated per extension by the sandbox
	Builtins *Builtins
	// Extras carries node-local native facilities exposed to builtin advice
	// factories through Env.Extras.
	Extras map[string]any
	// Journal, when set, checkpoints every installed extension and its lease
	// deadline so Recover can rebuild the adaptation state after a crash.
	Journal *ReceiverJournal
}

// Activity is one entry of the receiver's adaptation log.
type Activity struct {
	AtMillis int64
	Event    string // "install", "replace", "refresh", "withdraw", "expire", "reject", "recover"
	Ext      string
	Base     string
	Detail   string
}

// ExtensionInfo describes one installed extension.
type ExtensionInfo struct {
	ID       string
	Name     string
	Version  int
	BaseAddr string
	System   bool // implicit extension auto-installed via Requires
}

type installedExt struct {
	ext      Extension
	baseAddr string
	leaseID  lease.ID
	system   bool
	refs     int // dependents, for system extensions
	bodies   []aop.Body
	// sc is the span context of the install, so an autonomous expiry years
	// of renewals later still joins the trace that installed the extension.
	sc trace.SpanContext
}

// Receiver is the adaptation service carried by every mobile node: it
// accepts signed extensions from bases, weaves them, and withdraws them when
// their leases lapse (the node left the base's space) or the base revokes
// them.
type Receiver struct {
	cfg     ReceiverConfig
	grantor *lease.Grantor

	mu        sync.Mutex
	installed map[string]*installedExt // by extension Name
	activity  []Activity
	reg       *metrics.Registry
	m         receiverMetrics
	tracer    *trace.Tracer

	// Piggybacked observability state (fleet.go): what was already reported,
	// so each renewBatch response carries only the delta. Own lock — the
	// report reads the registry and tracer, never receiver state.
	obsMu         sync.Mutex
	obsSent       map[string]obsCum
	obsDropped    uint64
	obsSampledOut uint64
	obsTailKept   uint64
}

// receiverMetrics counts adaptation lifecycle events, mirroring the activity
// log; all fields are nil-safe no-ops until Instrument.
type receiverMetrics struct {
	installs    *metrics.Counter
	replaces    *metrics.Counter
	refreshes   *metrics.Counter
	withdrawals *metrics.Counter
	expiries    *metrics.Counter
	rejects     *metrics.Counter
	recovers    *metrics.Counter
	journalErrs *metrics.Counter
	installed   *metrics.Gauge
}

// Instrument records extension installs, replacements, withdrawals, lease
// expiries and signature/policy rejections in reg, plus the installed-set
// gauge. The receiver's grantor joins the same registry, and ServeOn gains a
// midas.metrics method exposing the full snapshot. A nil reg is a no-op.
func (r *Receiver) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	r.grantor.Instrument(reg)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reg = reg
	r.m = receiverMetrics{
		installs:    reg.Counter("ext.installs"),
		replaces:    reg.Counter("ext.replaces"),
		refreshes:   reg.Counter("ext.refreshes"),
		withdrawals: reg.Counter("ext.withdrawals"),
		expiries:    reg.Counter("ext.expiries"),
		rejects:     reg.Counter("ext.rejects"),
		recovers:    reg.Counter("ext.recovers"),
		journalErrs: reg.Counter("ext.journal_errors"),
		installed:   reg.Gauge("ext.installed"),
	}
	r.m.installed.Set(int64(len(r.installed)))
}

// NewReceiver builds a receiver. Weaver, Trust and Policy are required;
// Clock defaults to the real clock, Builtins to an empty registry.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if cfg.Weaver == nil || cfg.Trust == nil || cfg.Policy == nil {
		return nil, fmt.Errorf("core: receiver needs Weaver, Trust and Policy")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Builtins == nil {
		cfg.Builtins = NewBuiltins()
	}
	return &Receiver{
		cfg:       cfg,
		grantor:   lease.NewGrantor(cfg.Clock),
		installed: make(map[string]*installedExt),
	}, nil
}

// Grantor exposes the lease grantor for sweeping (tests) or Start/Stop.
func (r *Receiver) Grantor() *lease.Grantor { return r.grantor }

// Trace records the receiver's lifecycle (install, refresh, withdraw,
// expire) as spans in tr and threads the tracer into the weaver and grantor,
// so a pushed extension's whole journey on this node reads as one trace.
// ServeOn additionally gains a midas.trace method exposing tr's spans and
// events over the fabric. Call before serving; a nil tr is a no-op.
func (r *Receiver) Trace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	r.mu.Lock()
	r.tracer = tr
	r.mu.Unlock()
	r.cfg.Weaver.Trace(tr)
	r.grantor.Trace(tr)
}

func (r *Receiver) traceRef() *trace.Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracer
}

// Install verifies, sandboxes and weaves a signed extension from baseAddr,
// holding it under a lease of duration dur. Implicit extensions listed in
// Requires are auto-installed from the builtin bundle registry first.
func (r *Receiver) Install(signed SignedExtension, baseAddr string, dur time.Duration) (lease.ID, error) {
	return r.InstallCtx(context.Background(), signed, baseAddr, dur)
}

// InstallCtx is Install joining the trace carried by ctx (normally the
// base's push, delivered with the RPC); the outcome — fresh install, version
// replace or idempotent refresh — lands as a tag on the "ext.install" span.
func (r *Receiver) InstallCtx(ctx context.Context, signed SignedExtension, baseAddr string, dur time.Duration) (lease.ID, error) {
	ext := signed.Ext
	ctx, sp := r.traceRef().StartSpan(ctx, "ext.install")
	sp.Tag("ext", ext.Name)
	sp.Tag("node", r.cfg.NodeName)
	if err := signed.Verify(r.cfg.Trust); err != nil {
		r.log("reject", ext.Name, baseAddr, err.Error())
		sp.Tag("outcome", "reject")
		sp.End(err)
		return "", err
	}
	if err := ext.Validate(); err != nil {
		r.log("reject", ext.Name, baseAddr, err.Error())
		sp.Tag("outcome", "reject")
		sp.End(err)
		return "", err
	}
	// Resolve implicit extensions before the dependent one (§3.3: adding an
	// extension that needs session information automatically adds the
	// session-management extension).
	for _, req := range ext.Requires {
		if err := r.installImplicit(ctx, req, baseAddr); err != nil {
			r.log("reject", ext.Name, baseAddr, err.Error())
			sp.Tag("outcome", "reject")
			sp.End(err)
			return "", err
		}
	}
	id, outcome, err := r.install(ctx, ext, signed.Sig.SignerName, baseAddr, dur, false, nil)
	if err != nil {
		r.log("reject", ext.Name, baseAddr, err.Error())
		sp.Tag("outcome", "reject")
		sp.End(err)
		return "", err
	}
	r.journalExt(signed, baseAddr, id, dur)
	sp.Tag("outcome", outcome)
	sp.End(nil)
	return id, nil
}

// journalExt checkpoints an installed extension and its lease deadline so a
// crashed node recovers into the same adaptation state.
func (r *Receiver) journalExt(signed SignedExtension, baseAddr string, id lease.ID, dur time.Duration) {
	if r.cfg.Journal == nil {
		return
	}
	deadline, _ := r.grantor.Deadline(id)
	err := r.cfg.Journal.PutExt(signed.Ext.Name, InstallRecord{
		Signed:         signed,
		BaseAddr:       baseAddr,
		LeaseID:        string(id),
		DurMillis:      dur.Milliseconds(),
		DeadlineMillis: deadline.UnixMilli(),
	})
	if err != nil {
		r.mu.Lock()
		je := r.m.journalErrs
		r.mu.Unlock()
		je.Inc()
		r.traceRef().Eventf(nil, "recover", "journal ext %s: %v", signed.Ext.Name, err)
	}
}

func (r *Receiver) installImplicit(ctx context.Context, name, baseAddr string) error {
	r.mu.Lock()
	if ie, ok := r.installed[name]; ok {
		ie.refs++
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	bundle, ok := r.cfg.Builtins.Bundle(name)
	if !ok {
		return fmt.Errorf("core: required implicit extension %q not available", name)
	}
	// Implicit extensions are local and trusted: no lease, no signature.
	if _, _, err := r.install(ctx, bundle, "local", baseAddr, 0, true, nil); err != nil {
		return err
	}
	r.mu.Lock()
	if ie, ok := r.installed[name]; ok {
		ie.refs = 1
	}
	r.mu.Unlock()
	return nil
}

// install weaves one extension. When restore is non-nil the install replays a
// journal record: the original lease is re-registered under its absolute
// deadline instead of a fresh grant, so a lease that lapsed while the node was
// down expires on the first sweep rather than being silently re-opened.
func (r *Receiver) install(ctx context.Context, ext Extension, signer, baseAddr string, dur time.Duration, system bool, restore *InstallRecord) (lease.ID, string, error) {
	// Idempotent re-push: a base retrying an install whose response was lost
	// on the wire re-sends the same version. Refresh the existing lease and
	// return the original handle instead of failing — and do it before any
	// advice bodies are built so a refresh allocates nothing.
	r.mu.Lock()
	var refreshID lease.ID
	if old, ok := r.installed[ext.Name]; ok && !system && !old.system &&
		ext.Version == old.ext.Version && old.baseAddr == baseAddr && old.leaseID != "" {
		refreshID = old.leaseID
	}
	r.mu.Unlock()
	if refreshID != "" {
		if _, err := r.grantor.RenewCtx(ctx, refreshID, dur); err == nil {
			r.log("refresh", ext.Name, baseAddr, fmt.Sprintf("version %d", ext.Version))
			return refreshID, "refresh", nil
		}
		// The lease lapsed under us; fall through to the ordinary path.
	}

	perms, err := r.cfg.Policy.Grant(signer, ext.Capabilities())
	if err != nil {
		return "", "", err
	}
	// Pre-weave defense in depth: re-infer the capability demand of the
	// extension's advice on this side of the wire. The base already admitted
	// it, but a compromised base could sign and push code whose inferred
	// capabilities exceed both its declaration and this node's grant — the
	// signature would still verify, so the receiver must not take the
	// declared set at face value.
	rep, err := AnalyzeExtension(ext)
	if err != nil {
		return "", "", fmt.Errorf("core: extension %q rejected by pre-weave analysis: %w", ext.Name, err)
	}
	if missing := perms.Diff(rep.Demand()); len(missing) > 0 {
		return "", "", fmt.Errorf("core: extension %q advice can exercise capabilities %v beyond grant %s",
			ext.Name, missing, perms)
	}
	// Same defense for information flows: the base refused undeclared flows
	// at admission, but the receiver re-derives them so a rogue base cannot
	// push laundering bytecode under an innocent declaration.
	if err := CheckFlows(ext, rep, nil); err != nil {
		return "", "", fmt.Errorf("core: extension %q rejected by pre-weave flow check: %w", ext.Name, err)
	}
	gated := sandbox.NewHost(r.cfg.Host, perms)
	// Every reachable host call has now been checked against the grant, so
	// the per-dispatch capability gate is provably dead for exactly those
	// functions — let the sandbox dispatch them straight through.
	gated.Prove(rep.HostCalls...)
	env := &Env{NodeName: r.cfg.NodeName, BaseAddr: baseAddr, Host: gated, Extras: r.cfg.Extras}

	aspect := &aop.Aspect{Name: ext.Name, Priority: ext.Priority}
	var bodies []aop.Body
	for i := range ext.Advices {
		spec := &ext.Advices[i]
		var body aop.Body
		if spec.Builtin != "" {
			body, err = r.cfg.Builtins.New(spec.Builtin, env, spec.Config)
		} else {
			body, err = CompileAdvice(spec.Code, gated)
		}
		if err != nil {
			return "", "", fmt.Errorf("core: extension %q advice %q: %w", ext.Name, spec.Name, err)
		}
		when, kind, err := adviceKind(spec.Kind)
		if err != nil {
			return "", "", err
		}
		pat, err := aop.ParsePattern(spec.Pattern)
		if err != nil {
			return "", "", err
		}
		bodies = append(bodies, body)
		aspect.Advices = append(aspect.Advices, aop.Advice{
			Name: spec.Name,
			When: when,
			Cut:  aop.Crosscut{Kind: kind, Pat: pat},
			Body: body,
		})
	}
	aspect.OnShutdown = func() {
		for _, b := range bodies {
			if s, ok := b.(ShutdownBody); ok {
				s.Shutdown()
			}
		}
	}

	r.mu.Lock()
	old, exists := r.installed[ext.Name]
	r.mu.Unlock()

	event := "install"
	if exists {
		if ext.Version <= old.ext.Version {
			return "", "", fmt.Errorf("core: extension %q version %d already installed (have %d)",
				ext.Name, ext.Version, old.ext.Version)
		}
		if err := r.cfg.Weaver.ReplaceCtx(ctx, ext.Name, aspect); err != nil {
			return "", "", err
		}
		_ = r.grantor.Cancel(old.leaseID)
		event = "replace"
	} else {
		if err := r.cfg.Weaver.InsertCtx(ctx, aspect); err != nil {
			return "", "", err
		}
	}

	ie := &installedExt{ext: ext, baseAddr: baseAddr, system: system, bodies: bodies}
	ie.sc, _ = trace.FromContext(ctx)
	if exists {
		ie.refs = old.refs
	}
	if !system {
		name := ext.Name
		if restore != nil {
			l := r.grantor.Restore(lease.ID(restore.LeaseID), time.UnixMilli(restore.DeadlineMillis),
				time.Duration(restore.DurMillis)*time.Millisecond, func(lease.ID) { r.expire(name) })
			ie.leaseID = l.ID
		} else {
			l := r.grantor.GrantCtx(ctx, dur, func(lease.ID) { r.expire(name) })
			ie.leaseID = l.ID
		}
	}
	r.mu.Lock()
	r.installed[ext.Name] = ie
	r.mu.Unlock()
	r.log(event, ext.Name, baseAddr, fmt.Sprintf("version %d, perms %s", ext.Version, gated.Perms()))
	if ie.leaseID != "" {
		return ie.leaseID, event, nil
	}
	return "", event, nil
}

// Renew extends an installed extension's lease; bases call this periodically
// to keep their adaptations alive.
func (r *Receiver) Renew(id lease.ID, dur time.Duration) error {
	_, err := r.renewLease(context.Background(), id, dur)
	return err
}

// renewLease extends a lease and checkpoints the new deadline.
func (r *Receiver) renewLease(ctx context.Context, id lease.ID, dur time.Duration) (lease.Lease, error) {
	l, err := r.grantor.RenewCtx(ctx, id, dur)
	if err != nil {
		return l, err
	}
	if r.cfg.Journal != nil {
		if err := r.cfg.Journal.UpdateDeadline(r.extNameByLease(id), l.Expiry.UnixMilli()); err != nil {
			r.mu.Lock()
			je := r.m.journalErrs
			r.mu.Unlock()
			je.Inc()
		}
	}
	return l, nil
}

// extNameByLease maps a lease handle back to its extension name ("" when the
// lease belongs to no installed extension).
func (r *Receiver) extNameByLease(id lease.ID) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, ie := range r.installed {
		if ie.leaseID == id {
			return name
		}
	}
	return ""
}

// Recover replays the receiver's journal after a crash: every recorded
// extension is re-verified, re-woven and its lease re-registered under the
// original handle and absolute deadline. Leases that lapsed while the node
// was down are expired immediately afterwards, so the surviving installed
// set matches what an uninterrupted node would hold. Call after trust keys
// are loaded and before serving. Returns the number of extensions restored.
func (r *Receiver) Recover() (int, error) {
	recs, err := r.cfg.Journal.Exts()
	if err != nil {
		return 0, err
	}
	restored := 0
	for _, rec := range recs {
		// A record that no longer survives re-verification (rotated base
		// key, missing builtin) is rejected and dropped, never fatal: the
		// node must come up empty-handed and let the base's reconciliation
		// re-push current extensions rather than refuse to start.
		if err := r.recoverOne(rec); err != nil {
			r.log("reject", rec.Signed.Ext.Name, rec.BaseAddr, "recover: "+err.Error())
			continue
		}
		restored++
	}
	// Sweep now: anything whose lease lapsed during the outage is withdrawn
	// before the node starts serving, not at the first periodic sweep.
	r.grantor.ExpireNow()
	return restored, nil
}

func (r *Receiver) recoverOne(rec InstallRecord) error {
	signed := rec.Signed
	ext := signed.Ext
	ctx, sp := r.traceRef().StartSpan(context.Background(), "ext.recover")
	sp.Tag("ext", ext.Name)
	sp.Tag("node", r.cfg.NodeName)
	err := func() error {
		if err := signed.Verify(r.cfg.Trust); err != nil {
			return err
		}
		if err := ext.Validate(); err != nil {
			return err
		}
		for _, req := range ext.Requires {
			if err := r.installImplicit(ctx, req, rec.BaseAddr); err != nil {
				return err
			}
		}
		dur := time.Duration(rec.DurMillis) * time.Millisecond
		_, _, err := r.install(ctx, ext, signed.Sig.SignerName, rec.BaseAddr, dur, false, &rec)
		return err
	}()
	sp.End(err)
	if err != nil {
		// The record did not survive re-verification (key rotated, builtin
		// gone): drop it so the next restart is not haunted by it.
		_ = r.cfg.Journal.DeleteExt(ext.Name)
		return err
	}
	r.log("recover", ext.Name, rec.BaseAddr, fmt.Sprintf("version %d", ext.Version))
	return nil
}

// Inventory reports the non-system extensions this node holds, with their
// originating base, lease handle and absolute deadline — the receiver's side
// of anti-entropy reconciliation.
func (r *Receiver) Inventory() []InventoryItem {
	r.mu.Lock()
	items := make([]InventoryItem, 0, len(r.installed))
	for _, ie := range r.installed {
		if ie.system {
			continue
		}
		items = append(items, InventoryItem{
			Name:     ie.ext.Name,
			Version:  ie.ext.Version,
			BaseAddr: ie.baseAddr,
			LeaseID:  string(ie.leaseID),
		})
	}
	r.mu.Unlock()
	for i := range items {
		if d, ok := r.grantor.Deadline(lease.ID(items[i].LeaseID)); ok {
			items[i].DeadlineMillis = d.UnixMilli()
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Name < items[j].Name })
	return items
}

// Withdraw removes the named extension immediately (explicit revocation by
// the base, or local policy), running its shutdown procedure.
func (r *Receiver) Withdraw(name string) error {
	return r.WithdrawCtx(context.Background(), name)
}

// WithdrawCtx is Withdraw joining the trace carried by ctx (normally the
// base's revoke RPC).
func (r *Receiver) WithdrawCtx(ctx context.Context, name string) error {
	ctx, sp := r.traceRef().StartSpan(ctx, "ext.withdraw")
	sp.Tag("ext", name)
	sp.Tag("node", r.cfg.NodeName)
	err := r.remove(ctx, name, "withdraw")
	sp.End(err)
	return err
}

func (r *Receiver) expire(name string) {
	// Lease lapsed without renewal: the node has left the base's space (or
	// the base died); autonomously discard the adaptation (§3.2) — inside
	// the trace that installed the extension.
	r.mu.Lock()
	var sc trace.SpanContext
	if ie, ok := r.installed[name]; ok {
		sc = ie.sc
	}
	tr := r.tracer
	r.mu.Unlock()
	ctx, sp := tr.StartSpan(trace.NewContext(context.Background(), sc), "ext.expire")
	sp.Tag("ext", name)
	sp.Tag("node", r.cfg.NodeName)
	sp.End(r.remove(ctx, name, "expire"))
}

func (r *Receiver) remove(ctx context.Context, name, event string) error {
	r.mu.Lock()
	ie, ok := r.installed[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("core: extension %q %w", name, ErrNotInstalled)
	}
	delete(r.installed, name)
	requires := ie.ext.Requires
	baseAddr := ie.baseAddr
	leaseID := ie.leaseID
	system := ie.system
	r.mu.Unlock()

	// System extensions are never journalled, so skip the tombstone write.
	if !system {
		_ = r.cfg.Journal.DeleteExt(name)
	}

	if leaseID != "" {
		_ = r.grantor.Cancel(leaseID)
	}
	if err := r.cfg.Weaver.WithdrawCtx(ctx, name); err != nil {
		return err
	}
	r.log(event, name, baseAddr, "")

	// Release implicit dependencies.
	for _, req := range requires {
		r.mu.Lock()
		dep, ok := r.installed[req]
		var drop bool
		if ok && dep.system {
			dep.refs--
			drop = dep.refs <= 0
		}
		r.mu.Unlock()
		if drop {
			_ = r.remove(ctx, req, "withdraw")
		}
	}
	return nil
}

// Installed lists the current extensions sorted by name.
func (r *Receiver) Installed() []ExtensionInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ExtensionInfo, 0, len(r.installed))
	for _, ie := range r.installed {
		out = append(out, ExtensionInfo{
			ID:       ie.ext.ID,
			Name:     ie.ext.Name,
			Version:  ie.ext.Version,
			BaseAddr: ie.baseAddr,
			System:   ie.system,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Has reports whether the named extension is installed.
func (r *Receiver) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.installed[name]
	return ok
}

// Activity returns the adaptation log.
func (r *Receiver) Activity() []Activity {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Activity, len(r.activity))
	copy(out, r.activity)
	return out
}

func (r *Receiver) log(event, ext, base, detail string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.activity = append(r.activity, Activity{
		AtMillis: r.cfg.Clock.Now().UnixMilli(),
		Event:    event,
		Ext:      ext,
		Base:     base,
		Detail:   detail,
	})
	switch event {
	case "install":
		r.m.installs.Inc()
	case "replace":
		r.m.replaces.Inc()
	case "refresh":
		r.m.refreshes.Inc()
	case "withdraw":
		r.m.withdrawals.Inc()
	case "expire":
		r.m.expiries.Inc()
	case "reject":
		r.m.rejects.Inc()
	case "recover":
		r.m.recovers.Inc()
	}
	r.m.installed.Set(int64(len(r.installed)))
}

// ShutdownBody is implemented by advice bodies that need a shutdown
// procedure before their extension is discarded (e.g. flushing buffered
// monitoring records).
type ShutdownBody interface {
	Shutdown()
}

// Advertise registers the receiver as a midas.adaptation service at the
// lookup service behind client and keeps the registration alive. The
// returned stop function deregisters.
func (r *Receiver) Advertise(client *registry.Client, dur time.Duration, attrs map[string]string) (func(), error) {
	item := registry.ServiceItem{
		ID:    r.cfg.NodeName,
		Name:  AdaptationService,
		Addr:  r.cfg.Addr,
		Attrs: attrs,
	}
	// The advertisement roots the trace a whole adaptation hangs off: the
	// lookup stamps its span context on the watcher event, the base adapts
	// inside it, and the pushes/weaves/renewals that follow join it.
	ctx, sp := r.traceRef().StartSpan(context.Background(), "discovery.advertise")
	sp.Tag("node", r.cfg.NodeName)
	leaseID, err := client.RegisterCtx(ctx, item, dur)
	sp.End(err)
	if err != nil {
		return nil, fmt.Errorf("core: advertise: %w", err)
	}
	renewer := lease.NewRenewer(r.cfg.Clock,
		lease.Lease{ID: leaseID, Duration: dur},
		func(id lease.ID, d time.Duration) (lease.Lease, error) {
			if err := client.Renew(id, d); err != nil {
				return lease.Lease{}, err
			}
			return lease.Lease{ID: id, Duration: d}, nil
		},
		0.5, nil)
	r.mu.Lock()
	reg := r.reg
	r.mu.Unlock()
	renewer.Instrument(reg)
	renewer.Start()
	return func() {
		renewer.Stop()
		_ = client.Deregister(item.ID)
	}, nil
}

// RPC method names served by a receiver.
const (
	MethodInstall = "midas.install"
	MethodRenewE  = "midas.renew"
	MethodRevoke  = "midas.revoke"
	MethodList    = "midas.list"
	MethodMetrics = "midas.metrics"
	MethodTrace   = "midas.trace"
)

// Wire types for the receiver RPC surface.
type (
	// InstallReq pushes a signed extension.
	InstallReq struct {
		Signed    SignedExtension
		BaseAddr  string
		DurMillis int64
	}
	// InstallResp returns the lease handle.
	InstallResp struct {
		LeaseID string
	}
	// RenewExtReq keeps an extension alive.
	RenewExtReq struct {
		LeaseID   string
		DurMillis int64
	}
	// RenewExtResp reports the actually granted duration, which a receiver
	// may shorten; the base's renewer adopts it so renewals keep fitting
	// inside the lease.
	RenewExtResp struct {
		DurMillis int64
	}
	// RevokeReq withdraws an extension by name.
	RevokeReq struct {
		Name string
	}
	// ListResp describes installed extensions.
	ListResp struct {
		Extensions []ExtensionInfo
	}
	// MetricsResp carries a node's metrics snapshot.
	MetricsResp struct {
		Snap metrics.Snapshot
	}
	// TraceReq queries recorded spans by trace ID, extension or node name;
	// an empty query returns everything.
	TraceReq struct {
		Query string
	}
	// TraceResp carries the matching spans plus the events of their traces.
	TraceResp struct {
		Spans  []trace.SpanSnapshot
		Events []trace.Event
	}
	// EmptyResp is the empty response.
	EmptyResp struct{}
)

// ServeOn registers the receiver's RPC surface on mux.
func (r *Receiver) ServeOn(mux *transport.Mux) {
	r.serveBatch(mux)
	transport.Register(mux, MethodInstall, func(ctx context.Context, req InstallReq) (InstallResp, error) {
		id, err := r.InstallCtx(ctx, req.Signed, req.BaseAddr, time.Duration(req.DurMillis)*time.Millisecond)
		if err != nil {
			return InstallResp{}, err
		}
		return InstallResp{LeaseID: string(id)}, nil
	})
	transport.Register(mux, MethodRenewE, func(ctx context.Context, req RenewExtReq) (RenewExtResp, error) {
		l, err := r.renewLease(ctx, lease.ID(req.LeaseID), time.Duration(req.DurMillis)*time.Millisecond)
		if err != nil {
			return RenewExtResp{}, err
		}
		return RenewExtResp{DurMillis: l.Duration.Milliseconds()}, nil
	})
	transport.Register(mux, MethodInventory, func(_ context.Context, _ EmptyResp) (InventoryResp, error) {
		return InventoryResp{Node: r.cfg.NodeName, Items: r.Inventory()}, nil
	})
	transport.Register(mux, MethodRevoke, func(ctx context.Context, req RevokeReq) (EmptyResp, error) {
		// A revoke of something already gone is a success: the base may be
		// retrying a revocation whose response was lost.
		if err := r.WithdrawCtx(ctx, req.Name); err != nil && !errors.Is(err, ErrNotInstalled) {
			return EmptyResp{}, err
		}
		return EmptyResp{}, nil
	})
	transport.Register(mux, MethodList, func(_ context.Context, _ EmptyResp) (ListResp, error) {
		return ListResp{Extensions: r.Installed()}, nil
	})
	transport.Register(mux, MethodMetrics, func(_ context.Context, _ EmptyResp) (MetricsResp, error) {
		r.mu.Lock()
		reg := r.reg
		r.mu.Unlock()
		if reg == nil {
			return MetricsResp{}, fmt.Errorf("core: node %s is not instrumented", r.cfg.NodeName)
		}
		return MetricsResp{Snap: reg.Snapshot()}, nil
	})
	transport.Register(mux, MethodTrace, func(_ context.Context, req TraceReq) (TraceResp, error) {
		tr := r.traceRef()
		if tr == nil {
			return TraceResp{}, fmt.Errorf("core: node %s is not traced", r.cfg.NodeName)
		}
		return CollectTrace(tr, req), nil
	})
}

// CollectTrace resolves a trace query against tr: the spans QuerySpans finds
// plus every buffered event belonging to their traces (all events for an
// empty query). Daemons that are not receivers (the base station) register
// MethodTrace with this directly.
func CollectTrace(tr *trace.Tracer, req TraceReq) TraceResp {
	spans := tr.QuerySpans(req.Query)
	if req.Query == "" {
		return TraceResp{Spans: spans, Events: tr.Events(trace.EventFilter{})}
	}
	ids := make(map[string]bool, len(spans))
	for _, s := range spans {
		ids[s.TraceID] = true
	}
	var events []trace.Event
	for _, e := range tr.Events(trace.EventFilter{}) {
		if ids[e.TraceID] {
			events = append(events, e)
		}
	}
	return TraceResp{Spans: spans, Events: events}
}
