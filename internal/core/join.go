package core

import (
	"time"

	"repro/internal/discovery"
	"repro/internal/registry"
)

// AutoJoin keeps the receiver's adaptation service advertised at every
// lookup service it can currently hear: each discovery announcement
// (re-)registers the service there, so periodic beacons double as lease
// renewals. When the node moves out of an environment it stops hearing the
// beacons, the registration lease lapses at that lookup, and the
// environment's base observes the departure — no explicit leave protocol.
//
// clientFor builds a lookup client for an announced address (it typically
// binds the node's own transport caller); filter restricts which
// announcements are audible (the mobility world's range oracle). The
// returned function stops joining.
func (r *Receiver) AutoJoin(bus *discovery.Bus, clientFor func(lookupAddr string) *registry.Client, dur time.Duration, attrs map[string]string, filter func(discovery.Announcement) bool) func() {
	item := registry.ServiceItem{
		ID:    r.cfg.NodeName,
		Name:  AdaptationService,
		Addr:  r.cfg.Addr,
		Attrs: attrs,
	}
	cancel := bus.Subscribe(func(a discovery.Announcement) {
		client := clientFor(a.LookupAddr)
		if client == nil {
			return
		}
		// Registration is idempotent (same service ID refreshes); a failed
		// attempt is retried naturally on the next beacon.
		_, _ = client.Register(item, dur)
	}, filter)
	return cancel
}
