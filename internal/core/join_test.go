package core

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/discovery"
	"repro/internal/mobility"
	"repro/internal/registry"
	"repro/internal/transport"
)

// TestAutoJoin walks a node through two environments: hearing hall-1's
// beacons registers it there; moving to hall-2 shifts the registration, and
// the stale one expires on its own.
func TestAutoJoin(t *testing.T) {
	fabric := transport.NewInProc()
	world := mobility.NewWorld()
	if err := world.AddArea(mobility.Area{Name: "hall-1", Center: mobility.Point{X: 0}, Radius: 10, BaseAddr: "lookup-1"}); err != nil {
		t.Fatal(err)
	}
	if err := world.AddArea(mobility.Area{Name: "hall-2", Center: mobility.Point{X: 100}, Radius: 10, BaseAddr: "lookup-2"}); err != nil {
		t.Fatal(err)
	}
	if err := world.AddNode("robot1", "robot1", mobility.Point{X: 0}); err != nil {
		t.Fatal(err)
	}
	fabric.SetLinkFunc(world.LinkFunc())

	clk := clock.NewManual(time.Unix(0, 0))
	newLookup := func(addr string) *registry.Lookup {
		lookup := registry.NewLookup(clk)
		mux := transport.NewMux()
		srv := registry.NewServer(addr, lookup, mux, fabric.Node(addr), clk)
		t.Cleanup(srv.Close)
		stop, err := fabric.Serve(addr, mux)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(stop)
		return lookup
	}
	lookup1 := newLookup("lookup-1")
	lookup2 := newLookup("lookup-2")

	n := newTestNode(t)
	bus := discovery.NewBus()
	stop := n.receiver.AutoJoin(bus,
		func(addr string) *registry.Client {
			return &registry.Client{Caller: fabric.Node("robot1"), Addr: addr}
		},
		20*time.Second, nil,
		func(a discovery.Announcement) bool { return world.NodeHears("robot1", a.Area) },
	)
	defer stop()

	announceAll := func() {
		bus.Announce(discovery.Announcement{Name: "hall-1", LookupAddr: "lookup-1", Area: "hall-1"})
		bus.Announce(discovery.Announcement{Name: "hall-2", LookupAddr: "lookup-2", Area: "hall-2"})
	}

	announceAll()
	if got := lookup1.Find(registry.Template{Name: AdaptationService}); len(got) != 1 {
		t.Fatalf("hall-1 registrations = %v", got)
	}
	if got := lookup2.Find(registry.Template{}); len(got) != 0 {
		t.Fatalf("hall-2 should not hear the node: %v", got)
	}

	// Beacons keep the registration alive across lease boundaries.
	for i := 0; i < 3; i++ {
		clk.Advance(15 * time.Second)
		lookup1.ExpireNow()
		announceAll()
	}
	if got := lookup1.Find(registry.Template{Name: AdaptationService}); len(got) != 1 {
		t.Fatal("registration lapsed despite beacons")
	}

	// The robot migrates to hall-2.
	if err := world.MoveNode("robot1", mobility.Point{X: 100}); err != nil {
		t.Fatal(err)
	}
	announceAll()
	if got := lookup2.Find(registry.Template{Name: AdaptationService}); len(got) != 1 {
		t.Fatalf("hall-2 registrations = %v", got)
	}
	// hall-1's stale registration expires without renewals.
	clk.Advance(21 * time.Second)
	lookup1.ExpireNow()
	if got := lookup1.Find(registry.Template{}); len(got) != 0 {
		t.Fatalf("stale hall-1 registration survived: %v", got)
	}

	// After stop, announcements no longer register anywhere.
	stop()
	lookup2.ExpireNow()
	clk.Advance(21 * time.Second)
	lookup2.ExpireNow()
	announceAll()
	if got := lookup2.Find(registry.Template{}); len(got) != 0 {
		t.Fatalf("stopped auto-join still registering: %v", got)
	}
}
