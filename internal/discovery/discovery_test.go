package discovery

import (
	"sync"
	"testing"
	"time"
)

func TestBusAnnounceSubscribe(t *testing.T) {
	bus := NewBus()
	var mu sync.Mutex
	var got []Announcement
	cancel := bus.Subscribe(func(a Announcement) {
		mu.Lock()
		got = append(got, a)
		mu.Unlock()
	}, nil)

	bus.Announce(Announcement{Name: "hall-1", LookupAddr: "lookup-1"})
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 1 || got[0].Name != "hall-1" {
		t.Fatalf("got = %v", got)
	}

	cancel()
	bus.Announce(Announcement{Name: "hall-2"})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Error("unsubscribed listener received announcement")
	}
}

func TestBusFilter(t *testing.T) {
	bus := NewBus()
	var got []Announcement
	bus.Subscribe(func(a Announcement) { got = append(got, a) },
		func(a Announcement) bool { return a.Area == "north" })
	bus.Announce(Announcement{Name: "a", Area: "north"})
	bus.Announce(Announcement{Name: "b", Area: "south"})
	if len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("got = %v", got)
	}
}

func TestAnnouncerRepeats(t *testing.T) {
	bus := NewBus()
	var mu sync.Mutex
	count := 0
	bus.Subscribe(func(Announcement) {
		mu.Lock()
		count++
		mu.Unlock()
	}, nil)
	an := StartAnnouncer(bus, Announcement{Name: "hall"}, 5*time.Millisecond)
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := count
		mu.Unlock()
		if n >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("announcer did not repeat")
		case <-time.After(time.Millisecond):
		}
	}
	an.Stop()
}

func TestUDPAnnounceListen(t *testing.T) {
	ch := make(chan Announcement, 1)
	l, err := ListenUDP("127.0.0.1:0", func(a Announcement) {
		select {
		case ch <- a:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	want := Announcement{Name: "hall-9", LookupAddr: "10.0.0.1:7000", Area: "west"}
	// UDP is lossy even on loopback in theory; retry a few times.
	for i := 0; i < 5; i++ {
		if err := AnnounceUDP(l.Addr(), want); err != nil {
			t.Fatal(err)
		}
		select {
		case got := <-ch:
			if got != want {
				t.Fatalf("got = %+v", got)
			}
			return
		case <-time.After(200 * time.Millisecond):
		}
	}
	t.Fatal("announcement not received over UDP")
}
