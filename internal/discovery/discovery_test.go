package discovery

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/transport"
)

func TestBusAnnounceSubscribe(t *testing.T) {
	bus := NewBus()
	var mu sync.Mutex
	var got []Announcement
	cancel := bus.Subscribe(func(a Announcement) {
		mu.Lock()
		got = append(got, a)
		mu.Unlock()
	}, nil)

	bus.Announce(Announcement{Name: "hall-1", LookupAddr: "lookup-1"})
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 1 || got[0].Name != "hall-1" {
		t.Fatalf("got = %v", got)
	}

	cancel()
	bus.Announce(Announcement{Name: "hall-2"})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Error("unsubscribed listener received announcement")
	}
}

func TestBusFilter(t *testing.T) {
	bus := NewBus()
	var got []Announcement
	bus.Subscribe(func(a Announcement) { got = append(got, a) },
		func(a Announcement) bool { return a.Area == "north" })
	bus.Announce(Announcement{Name: "a", Area: "north"})
	bus.Announce(Announcement{Name: "b", Area: "south"})
	if len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("got = %v", got)
	}
}

func TestAnnouncerRepeats(t *testing.T) {
	bus := NewBus()
	var mu sync.Mutex
	count := 0
	bus.Subscribe(func(Announcement) {
		mu.Lock()
		count++
		mu.Unlock()
	}, nil)
	an := StartAnnouncer(bus, Announcement{Name: "hall"}, 5*time.Millisecond)
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := count
		mu.Unlock()
		if n >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("announcer did not repeat")
		case <-time.After(time.Millisecond):
		}
	}
	an.Stop()
}

func TestUDPAnnounceListen(t *testing.T) {
	ch := make(chan Announcement, 1)
	l, err := ListenUDP("127.0.0.1:0", func(a Announcement) {
		select {
		case ch <- a:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	want := Announcement{Name: "hall-9", LookupAddr: "10.0.0.1:7000", Area: "west"}
	// UDP is lossy even on loopback in theory; retry a few times.
	for i := 0; i < 5; i++ {
		if err := AnnounceUDP(l.Addr(), want); err != nil {
			t.Fatal(err)
		}
		select {
		case got := <-ch:
			if got != want {
				t.Fatalf("got = %+v", got)
			}
			return
		case <-time.After(200 * time.Millisecond):
		}
	}
	t.Fatal("announcement not received over UDP")
}

// A failing announcement is retried with backoff by the policy and recovers
// within one interval — a node entering a hall on a lossy link still finds
// the lookup service without waiting a full announce period.
func TestFuncAnnouncerRetriesFailedAnnounce(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	var calls atomic.Int64
	announce := func(context.Context) error {
		if calls.Add(1) < 3 {
			return errors.New("send failed")
		}
		return nil
	}
	pol := transport.NewPolicy(1)
	pol.BaseDelay = 0 // retry back-to-back; the test drives no clock
	pol.MaxAttempts = 5
	pol.RetryIf = func(error) bool { return true }
	an := StartFuncAnnouncer(announce, time.Minute, pol, clk)
	defer an.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("announce attempts = %d, want 3 (two retries)", calls.Load())
		}
		time.Sleep(time.Millisecond)
	}
	// Success reached: no further attempts until the next interval.
	time.Sleep(20 * time.Millisecond)
	if calls.Load() != 3 {
		t.Fatalf("announcer kept retrying after success: %d", calls.Load())
	}
}

// Stop aborts an in-flight retry backoff instead of waiting it out.
func TestFuncAnnouncerStopCancelsInFlightRetry(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	var calls atomic.Int64
	announce := func(context.Context) error {
		calls.Add(1)
		return errors.New("always failing")
	}
	pol := transport.NewPolicy(1)
	pol.BaseDelay = time.Hour // backoff the manual clock will never run out
	pol.Clock = clk
	pol.MaxAttempts = 10
	pol.RetryIf = func(error) bool { return true }
	an := StartFuncAnnouncer(announce, time.Minute, pol, clk)

	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("announcer never attempted")
		}
		time.Sleep(time.Millisecond)
	}
	stopped := make(chan struct{})
	go func() {
		an.Stop()
		close(stopped)
	}()
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung on an in-flight retry backoff")
	}
}
