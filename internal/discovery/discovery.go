// Package discovery implements the announce/listen protocol through which
// nodes find lookup services when they enter a new environment (the Jini
// discovery role). Two carriers are provided: an in-process bus scoped by the
// mobility simulator, and UDP datagrams for real deployments.
package discovery

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Announcement advertises a lookup service.
type Announcement struct {
	// Name identifies the environment, e.g. "hall-1".
	Name string
	// LookupAddr is the transport address of the lookup service.
	LookupAddr string
	// Area optionally names the physical area the announcement covers.
	Area string
}

// Bus is an in-process announcement channel. Subscribers receive every
// announcement published after they subscribed; an optional filter restricts
// delivery (the mobility layer filters by area/range).
type Bus struct {
	mu     sync.Mutex
	subs   map[int]*busSub
	nextID int
	m      busMetrics
	tracer *trace.Tracer
}

// busMetrics counts announcement traffic; nil-safe no-ops until Instrument.
type busMetrics struct {
	announces   *metrics.Counter
	deliveries  *metrics.Counter
	subscribers *metrics.Gauge
}

// Instrument records published announcements, per-subscriber deliveries (after
// filtering) and the live-subscriber gauge in reg. A nil reg is a no-op.
func (b *Bus) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m = busMetrics{
		announces:   reg.Counter("discovery.announces"),
		deliveries:  reg.Counter("discovery.deliveries"),
		subscribers: reg.Gauge("discovery.subscribers"),
	}
	b.m.subscribers.Set(int64(len(b.subs)))
}

type busSub struct {
	fn     func(Announcement)
	filter func(Announcement) bool
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[int]*busSub)}
}

// Trace logs published announcements to tr's structured event ring under the
// "discovery" component. A nil tr is a no-op.
func (b *Bus) Trace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tracer = tr
}

// Announce publishes a to all current subscribers (synchronously).
func (b *Bus) Announce(a Announcement) {
	b.mu.Lock()
	subs := make([]*busSub, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	m := b.m
	tr := b.tracer
	b.mu.Unlock()
	m.announces.Inc()
	tr.Eventf(nil, "discovery", "announce %s (lookup %s, area %q) to %d subscribers", a.Name, a.LookupAddr, a.Area, len(subs))
	for _, s := range subs {
		if s.filter == nil || s.filter(a) {
			m.deliveries.Inc()
			s.fn(a)
		}
	}
}

// Subscribe registers fn (with an optional filter); the returned function
// unsubscribes.
func (b *Bus) Subscribe(fn func(Announcement), filter func(Announcement) bool) func() {
	b.mu.Lock()
	b.nextID++
	id := b.nextID
	b.subs[id] = &busSub{fn: fn, filter: filter}
	b.m.subscribers.Set(int64(len(b.subs)))
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		delete(b.subs, id)
		b.m.subscribers.Set(int64(len(b.subs)))
		b.mu.Unlock()
	}
}

// Announcer periodically re-publishes an announcement, the way a Jini lookup
// service beacons its presence.
type Announcer struct {
	stop chan struct{}
	done chan struct{}
}

// StartAnnouncer announces a on bus every interval until Stop.
func StartAnnouncer(bus *Bus, a Announcement, interval time.Duration) *Announcer {
	return StartFuncAnnouncer(func(context.Context) error {
		bus.Announce(a)
		return nil
	}, interval, nil, nil)
}

// StartFuncAnnouncer runs announce immediately and then every interval until
// Stop, timed by clk (default the real clock). A non-nil pol retries each
// failed announcement with backoff — note pol's RetryIf decides what is worth
// retrying; announce carriers whose errors are not transport-level should set
// it. The context passed to announce is canceled on Stop, so an in-flight
// attempt or backoff wait aborts promptly.
func StartFuncAnnouncer(announce func(context.Context) error, interval time.Duration, pol *transport.Policy, clk clock.Clock) *Announcer {
	if clk == nil {
		clk = clock.Real{}
	}
	an := &Announcer{stop: make(chan struct{}), done: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-an.stop
		cancel()
	}()
	once := func() {
		if pol != nil {
			_ = pol.Do(ctx, announce)
			return
		}
		_ = announce(ctx)
	}
	go func() {
		defer close(an.done)
		once()
		for {
			select {
			case <-an.stop:
				return
			case <-clk.After(interval):
				once()
			}
		}
	}()
	return an
}

// StartUDPAnnouncer beacons a to target every interval until Stop, retrying
// failed sends per pol (which should carry a RetryIf suited to UDP send
// errors).
func StartUDPAnnouncer(target string, a Announcement, interval time.Duration, pol *transport.Policy) *Announcer {
	return StartFuncAnnouncer(func(context.Context) error {
		return AnnounceUDP(target, a)
	}, interval, pol, nil)
}

// Stop halts the announcer and waits for it to exit.
func (a *Announcer) Stop() {
	close(a.stop)
	<-a.done
}

// UDPListener receives announcements over UDP.
type UDPListener struct {
	conn *net.UDPConn
	done chan struct{}
}

// ListenUDP binds addr (e.g. "127.0.0.1:0") and invokes fn for every received
// announcement.
func ListenUDP(addr string, fn func(Announcement)) (*UDPListener, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("discovery: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("discovery: listen %s: %w", addr, err)
	}
	l := &UDPListener{conn: conn, done: make(chan struct{})}
	go func() {
		defer close(l.done)
		buf := make([]byte, 4096)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			var a Announcement
			if err := gob.NewDecoder(bytes.NewReader(buf[:n])).Decode(&a); err != nil {
				continue // ignore malformed datagrams
			}
			fn(a)
		}
	}()
	return l, nil
}

// Addr returns the bound UDP address.
func (l *UDPListener) Addr() string { return l.conn.LocalAddr().String() }

// Close stops the listener.
func (l *UDPListener) Close() error {
	err := l.conn.Close()
	<-l.done
	return err
}

// AnnounceUDP sends one announcement datagram to target.
func AnnounceUDP(target string, a Announcement) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&a); err != nil {
		return fmt.Errorf("discovery: encode: %w", err)
	}
	conn, err := net.Dial("udp", target)
	if err != nil {
		return fmt.Errorf("discovery: dial %s: %w", target, err)
	}
	defer conn.Close()
	if _, err := conn.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("discovery: send: %w", err)
	}
	return nil
}
