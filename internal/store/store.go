// Package store is the base-station database of the paper's prototype: the
// hardware-monitoring extension posts every motor action to the base, which
// persists it here; client tools then query, replay, replicate or analyse the
// movement history (Fig. 3b and Fig. 6). The implementation is an append-only
// record log with an in-memory index, optionally journalled to disk.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// Record is one logged action, e.g. a motor command.
type Record struct {
	Seq      int64  `json:"seq"` // assigned by the store on append
	Robot    string `json:"robot"`
	Device   string `json:"device"` // e.g. "motor:x"
	Action   string `json:"action"` // e.g. "rotate"
	Value    int64  `json:"value"`
	AtMillis int64  `json:"atMillis"`  // wall-clock time of the command
	DurMilli int64  `json:"durMillis"` // command duration
}

// Filter selects records. Zero fields match everything; Since/Until bound
// AtMillis inclusively/exclusively.
type Filter struct {
	Robot  string
	Device string
	Action string
	Since  int64 // inclusive; 0 = unbounded
	Until  int64 // exclusive; 0 = unbounded
}

func (f Filter) matches(r Record) bool {
	if f.Robot != "" && r.Robot != f.Robot {
		return false
	}
	if f.Device != "" && r.Device != f.Device {
		return false
	}
	if f.Action != "" && r.Action != f.Action {
		return false
	}
	if f.Since != 0 && r.AtMillis < f.Since {
		return false
	}
	if f.Until != 0 && r.AtMillis >= f.Until {
		return false
	}
	return true
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("store: closed")

// Store is an append-only record log. The zero value is not usable; use
// NewMemory or Open.
type Store struct {
	mu      sync.RWMutex
	recs    []Record
	nextSeq int64
	byRobot map[string][]int // indexes into recs

	f      *os.File
	w      *bufio.Writer
	closed bool
}

// NewMemory returns a volatile in-memory store.
func NewMemory() *Store {
	return &Store{nextSeq: 1, byRobot: make(map[string][]int)}
}

// Open returns a store journalled to path, loading any existing records.
func Open(path string) (*Store, error) {
	s := NewMemory()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			// A torn final line (crash mid-write) is tolerated; anything
			// mid-file is corruption.
			break
		}
		s.appendLocked(r, false)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: scan %s: %w", path, err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek %s: %w", path, err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	return s, nil
}

// Append assigns a sequence number, persists (when journalled) and indexes r.
func (s *Store) Append(r Record) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	return s.appendLocked(r, true)
}

func (s *Store) appendLocked(r Record, persist bool) (int64, error) {
	if r.Seq == 0 {
		r.Seq = s.nextSeq
	}
	if r.Seq >= s.nextSeq {
		s.nextSeq = r.Seq + 1
	}
	if persist && s.w != nil {
		line, err := json.Marshal(r)
		if err != nil {
			return 0, fmt.Errorf("store: marshal: %w", err)
		}
		if _, err := s.w.Write(append(line, '\n')); err != nil {
			return 0, fmt.Errorf("store: write: %w", err)
		}
		if err := s.w.Flush(); err != nil {
			return 0, fmt.Errorf("store: flush: %w", err)
		}
	}
	s.byRobot[r.Robot] = append(s.byRobot[r.Robot], len(s.recs))
	s.recs = append(s.recs, r)
	return r.Seq, nil
}

// Query returns all records matching f in append order.
func (s *Store) Query(f Filter) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	if f.Robot != "" {
		for _, i := range s.byRobot[f.Robot] {
			if f.matches(s.recs[i]) {
				out = append(out, s.recs[i])
			}
		}
		return out
	}
	for _, r := range s.recs {
		if f.matches(r) {
			out = append(out, r)
		}
	}
	return out
}

// Robots returns the distinct robot identities seen, unordered.
func (s *Store) Robots() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byRobot))
	for r := range s.byRobot {
		out = append(out, r)
	}
	return out
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Close flushes and closes the journal (no-op for in-memory stores).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.w != nil {
		if err := s.w.Flush(); err != nil {
			s.f.Close()
			return err
		}
		return s.f.Close()
	}
	return nil
}
