package store

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func rec(robot, device, action string, value, at int64) Record {
	return Record{Robot: robot, Device: device, Action: action, Value: value, AtMillis: at}
}

func TestAppendQuery(t *testing.T) {
	s := NewMemory()
	seed := []Record{
		rec("robot:1:1", "motor:x", "rotate", 30, 100),
		rec("robot:1:1", "motor:y", "rotate", -10, 200),
		rec("robot:2:1", "motor:x", "rotate", 5, 300),
		rec("robot:1:1", "motor:x", "stop", 0, 400),
	}
	for _, r := range seed {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}

	all := s.Query(Filter{})
	if len(all) != 4 {
		t.Fatalf("Query(all) = %d", len(all))
	}
	for i, r := range all {
		if r.Seq != int64(i+1) {
			t.Errorf("seq[%d] = %d", i, r.Seq)
		}
	}
	r1 := s.Query(Filter{Robot: "robot:1:1"})
	if len(r1) != 3 {
		t.Errorf("robot filter = %d", len(r1))
	}
	mx := s.Query(Filter{Robot: "robot:1:1", Device: "motor:x"})
	if len(mx) != 2 {
		t.Errorf("device filter = %d", len(mx))
	}
	rot := s.Query(Filter{Action: "rotate"})
	if len(rot) != 3 {
		t.Errorf("action filter = %d", len(rot))
	}
	window := s.Query(Filter{Since: 200, Until: 400})
	if len(window) != 2 {
		t.Errorf("time filter = %d: %v", len(window), window)
	}
	if len(s.Robots()) != 2 {
		t.Errorf("Robots = %v", s.Robots())
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movements.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if _, err := s.Append(rec("r1", "motor:x", "rotate", i, i*100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("reloaded Len = %d", s2.Len())
	}
	got := s2.Query(Filter{Robot: "r1"})
	for i, r := range got {
		if r.Value != int64(i) {
			t.Errorf("value[%d] = %d", i, r.Value)
		}
	}
	// Appending after reload continues the sequence.
	seq, err := s2.Append(rec("r1", "motor:x", "rotate", 99, 9900))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 {
		t.Errorf("continued seq = %d, want 11", seq)
	}
}

func TestAppendAfterClose(t *testing.T) {
	s := NewMemory()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(rec("r", "d", "a", 1, 1)); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestKVPutGetDelete(t *testing.T) {
	kv := NewKV()
	if _, ok := kv.Get("missing"); ok {
		t.Error("missing key found")
	}
	if err := kv.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok := kv.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if kv.Version("a") != 1 {
		t.Errorf("version = %d", kv.Version("a"))
	}
	if err := kv.Put("a", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if kv.Version("a") != 2 {
		t.Errorf("version after update = %d", kv.Version("a"))
	}
	if err := kv.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := kv.Get("a"); ok {
		t.Error("deleted key found")
	}
	if kv.Version("a") != 3 {
		t.Errorf("version after delete = %d", kv.Version("a"))
	}
}

func TestKVPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.kv")
	kv, err := OpenKV(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("Motor.pos/obj1", []byte("42")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("gone", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	kv2, err := OpenKV(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	v, ok := kv2.Get("Motor.pos/obj1")
	if !ok || string(v) != "42" {
		t.Fatalf("reloaded = %q, %v", v, ok)
	}
	if _, ok := kv2.Get("gone"); ok {
		t.Error("deleted key survived reload")
	}
	if kv2.Len() != 1 {
		t.Errorf("Len = %d", kv2.Len())
	}
}

func TestKVGetReturnsCopy(t *testing.T) {
	kv := NewKV()
	if err := kv.Put("k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	v, _ := kv.Get("k")
	v[0] = 'X'
	v2, _ := kv.Get("k")
	if string(v2) != "abc" {
		t.Error("Get leaked internal buffer")
	}
}

func TestKVRoundTripProperty(t *testing.T) {
	kv := NewKV()
	if err := quick.Check(func(key string, val []byte) bool {
		if err := kv.Put(key, val); err != nil {
			return false
		}
		got, ok := kv.Get(key)
		if !ok || len(got) != len(val) {
			return false
		}
		for i := range val {
			if got[i] != val[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOpenToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movements.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(rec("r", "d", "a", 1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append half a JSON line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"robot":"r","de`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Errorf("Len = %d, want 1 (torn line dropped)", s2.Len())
	}
}

func TestKVOpenToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.kv")
	kv, err := OpenKV(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"k":"half`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	kv2, err := OpenKV(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	if v, ok := kv2.Get("k"); !ok || string(v) != "v" {
		t.Errorf("reload = %q, %v", v, ok)
	}
}

func TestKVKeysAndDoubleClose(t *testing.T) {
	kv := NewKV()
	if err := kv.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	keys := kv.Keys()
	if len(keys) != 2 {
		t.Errorf("Keys = %v", keys)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if err := kv.Put("c", nil); err != ErrClosed {
		t.Errorf("Put after close = %v", err)
	}
	if err := kv.Delete("a"); err != ErrClosed {
		t.Errorf("Delete after close = %v", err)
	}
	if err := kv.Compact(); err != ErrClosed {
		t.Errorf("Compact after close = %v", err)
	}
}

func TestStoreCompactAfterClose(t *testing.T) {
	s := NewMemory()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(0); err != ErrClosed {
		t.Errorf("Compact after close = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
}
