package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// Compact rewrites the journal to contain only the live state, atomically
// replacing the old file. For the record Store this drops records older than
// keepSince (AtMillis; 0 keeps everything, making Compact a defragmenting
// rewrite); for long-running base stations this is how the movement history
// is pruned after it has been archived or replayed.
func (s *Store) Compact(keepSince int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}

	var kept []Record
	for _, r := range s.recs {
		if keepSince == 0 || r.AtMillis >= keepSince {
			kept = append(kept, r)
		}
	}

	if s.f != nil {
		path := s.f.Name()
		tmp := path + ".compact"
		f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
		w := bufio.NewWriter(f)
		for _, r := range kept {
			line, err := json.Marshal(r)
			if err != nil {
				f.Close()
				os.Remove(tmp)
				return fmt.Errorf("store: compact marshal: %w", err)
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				f.Close()
				os.Remove(tmp)
				return fmt.Errorf("store: compact write: %w", err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("store: compact rename: %w", err)
		}
		// Reopen the journal for appending.
		s.f.Close()
		nf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: compact reopen: %w", err)
		}
		s.f = nf
		s.w = bufio.NewWriter(nf)
	}

	// Rebuild in-memory state.
	s.recs = kept
	s.byRobot = make(map[string][]int, len(s.byRobot))
	for i, r := range s.recs {
		s.byRobot[r.Robot] = append(s.byRobot[r.Robot], i)
	}
	return nil
}

// CompactKV rewrites a KV journal to one entry per live key, atomically
// replacing the old file. Versions are preserved so optimistic transactions
// keep validating correctly across compaction.
func (kv *KV) Compact() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	return kv.compactLocked()
}

// compactLocked does the journal rewrite. Callers hold kv.mu.
func (kv *KV) compactLocked() error {
	if kv.f == nil {
		return nil // in-memory KV has nothing to compact
	}
	path := kv.f.Name()
	tmp := path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: kv compact: %w", err)
	}
	w := bufio.NewWriter(f)
	for key, val := range kv.data {
		e := kvEntry{Key: key, Value: val, Version: kv.versions[key]}
		line, err := json.Marshal(e)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: kv compact marshal: %w", err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: kv compact write: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: kv compact rename: %w", err)
	}
	kv.f.Close()
	nf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: kv compact reopen: %w", err)
	}
	kv.f = nf
	kv.w = bufio.NewWriter(nf)
	return nil
}
