package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStoreCompactPrunesOld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movements.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if _, err := s.Append(rec("r1", "motor:x", "rotate", i, i*100)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := os.Stat(path)

	if err := s.Compact(500); err != nil { // keep AtMillis >= 500
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("journal did not shrink: %d -> %d", before.Size(), after.Size())
	}

	// The store keeps working and persisting after compaction.
	if _, err := s.Append(rec("r1", "motor:y", "rotate", 99, 9900)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 6 {
		t.Fatalf("reloaded Len = %d, want 6", s2.Len())
	}
	if got := s2.Query(Filter{Device: "motor:y"}); len(got) != 1 || got[0].Value != 99 {
		t.Errorf("post-compact append lost: %v", got)
	}
	if got := s2.Query(Filter{Since: 0, Until: 500}); len(got) != 0 {
		t.Errorf("pruned records survived: %v", got)
	}
}

func TestStoreCompactInMemory(t *testing.T) {
	s := NewMemory()
	for i := int64(0); i < 4; i++ {
		if _, err := s.Append(rec("r", "d", "a", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(2); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	// Index rebuilt correctly.
	if got := s.Query(Filter{Robot: "r"}); len(got) != 2 {
		t.Errorf("query after compact = %v", got)
	}
}

func TestKVCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.kv")
	kv, err := OpenKV(path)
	if err != nil {
		t.Fatal(err)
	}
	// Churn: many updates to few keys.
	for i := 0; i < 50; i++ {
		if err := kv.Put("hot", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Put("cold", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Delete("cold"); err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(path)

	if err := kv.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("kv journal did not shrink: %d -> %d", before.Size(), after.Size())
	}
	// Versions survive compaction (transaction validation depends on them).
	if kv.Version("hot") != 50 {
		t.Errorf("version = %d", kv.Version("hot"))
	}
	if err := kv.Put("hot", []byte("post")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	kv2, err := OpenKV(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	v, ok := kv2.Get("hot")
	if !ok || string(v) != "post" {
		t.Errorf("reloaded hot = %q, %v", v, ok)
	}
	if kv2.Version("hot") != 51 {
		t.Errorf("reloaded version = %d", kv2.Version("hot"))
	}
	if _, ok := kv2.Get("cold"); ok {
		t.Error("deleted key resurrected by compaction")
	}
}

func TestKVCompactInMemoryNoop(t *testing.T) {
	kv := NewKV()
	if err := kv.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Compact(); err != nil {
		t.Fatal(err)
	}
	if v, ok := kv.Get("k"); !ok || string(v) != "v" {
		t.Error("in-memory compact damaged data")
	}
}

// TestKVAutoCompact: after the configured write budget, the journal is
// rewritten to one line per live key without losing state.
func TestKVAutoCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "auto.kv")
	kv, err := OpenKV(path)
	if err != nil {
		t.Fatal(err)
	}
	kv.SetAutoCompact(10)
	for i := 0; i < 25; i++ {
		if err := kv.Put("hot", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(raw), "\n")
	// 25 writes with compaction every 10: never more than ~10 journal lines
	// survive, instead of 25.
	if lines > 10 {
		t.Fatalf("journal has %d lines after auto-compaction, want <= 10", lines)
	}
	kv2, err := OpenKV(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	v, ok := kv2.Get("hot")
	if !ok || v[0] != 24 {
		t.Fatalf("reloaded value = %v, %v; want [24]", v, ok)
	}
	if kv2.Version("hot") != 25 {
		t.Fatalf("version = %d, want 25 (preserved across compaction)", kv2.Version("hot"))
	}
}
