package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// KV is a small versioned key-value store. The orthogonal-persistence
// extension snapshots intercepted field writes into it, and the transaction
// manager uses its versions for first-committer-wins validation.
type KV struct {
	mu       sync.RWMutex
	data     map[string][]byte
	versions map[string]int64

	f      *os.File
	w      *bufio.Writer
	closed bool

	autoCompactEvery int // journal writes between automatic compactions (0 = never)
	writesSinceComp  int
}

type kvEntry struct {
	Key     string `json:"k"`
	Value   []byte `json:"v"` // nil means delete
	Version int64  `json:"n"`
}

// NewKV returns a volatile in-memory KV.
func NewKV() *KV {
	return &KV{data: make(map[string][]byte), versions: make(map[string]int64)}
}

// OpenKV returns a KV journalled to path, replaying existing entries.
func OpenKV(path string) (*KV, error) {
	kv := NewKV()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open kv %s: %w", path, err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e kvEntry
		if err := json.Unmarshal(line, &e); err != nil {
			break // tolerate a torn tail
		}
		kv.applyLocked(e)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: scan kv %s: %w", path, err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek kv %s: %w", path, err)
	}
	kv.f = f
	kv.w = bufio.NewWriter(f)
	return kv, nil
}

// SetAutoCompact makes the KV rewrite its journal to the live state after
// every n journaled writes, bounding file growth for callers that update the
// same keys forever (e.g. lease-deadline checkpoints). n <= 0 disables
// automatic compaction. No-op for in-memory KVs.
func (kv *KV) SetAutoCompact(n int) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.autoCompactEvery = n
}

func (kv *KV) applyLocked(e kvEntry) {
	if e.Value == nil {
		delete(kv.data, e.Key)
	} else {
		kv.data[e.Key] = e.Value
	}
	kv.versions[e.Key] = e.Version
}

// Put stores value under key, bumping its version.
func (kv *KV) Put(key string, value []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	// Copy via make so an empty (but present) value stays non-nil — nil marks
	// deletion in the journal.
	cp := make([]byte, len(value))
	copy(cp, value)
	e := kvEntry{Key: key, Value: cp, Version: kv.versions[key] + 1}
	if err := kv.journalLocked(e); err != nil {
		return err
	}
	kv.applyLocked(e)
	return kv.maybeAutoCompactLocked()
}

// Delete removes key.
func (kv *KV) Delete(key string) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	e := kvEntry{Key: key, Version: kv.versions[key] + 1}
	if err := kv.journalLocked(e); err != nil {
		return err
	}
	kv.applyLocked(e)
	return kv.maybeAutoCompactLocked()
}

// maybeAutoCompactLocked compacts once the configured write budget is spent.
// Callers hold kv.mu.
func (kv *KV) maybeAutoCompactLocked() error {
	if kv.w == nil || kv.autoCompactEvery <= 0 {
		return nil
	}
	kv.writesSinceComp++
	if kv.writesSinceComp < kv.autoCompactEvery {
		return nil
	}
	kv.writesSinceComp = 0
	return kv.compactLocked()
}

// Get returns the value and whether the key exists. The returned slice is a
// copy.
func (kv *KV) Get(key string) ([]byte, bool) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	v, ok := kv.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Version returns the key's current version (0 when never written).
func (kv *KV) Version(key string) int64 {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.versions[key]
}

// Len returns the number of live keys.
func (kv *KV) Len() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.data)
}

// Keys returns the live keys, unordered.
func (kv *KV) Keys() []string {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	out := make([]string, 0, len(kv.data))
	for k := range kv.data {
		out = append(out, k)
	}
	return out
}

// Close flushes and closes the journal.
func (kv *KV) Close() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return nil
	}
	kv.closed = true
	if kv.w != nil {
		if err := kv.w.Flush(); err != nil {
			kv.f.Close()
			return err
		}
		return kv.f.Close()
	}
	return nil
}

func (kv *KV) journalLocked(e kvEntry) error {
	if kv.w == nil {
		return nil
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: marshal kv: %w", err)
	}
	if _, err := kv.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("store: write kv: %w", err)
	}
	return kv.w.Flush()
}
