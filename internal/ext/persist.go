package ext

import (
	"fmt"

	"repro/internal/aop"
	"repro/internal/core"
	"repro/internal/lvm"
	"repro/internal/sandbox"
	"repro/internal/txn"
)

// newPersist is the orthogonal-persistence extension measured in §4.6: woven
// at field-set join points, it mirrors every state change of the application
// into the node's persistent key-value store, keyed by class, field and
// object identity. The application itself stays persistence-unaware.
// Config:
//
//	prefix: key namespace (default "persist/")
//
// Requires the store capability.
func newPersist(env *core.Env, cfg map[string]string) (aop.Body, error) {
	prefix := cfg["prefix"]
	if prefix == "" {
		prefix = "persist/"
	}
	host := env.Host
	return aop.BodyFunc(func(ctx *aop.Context) error {
		key := prefix + ctx.Sig.Class + "." + ctx.Field + objectSuffix(ctx)
		var val lvm.Value
		switch ctx.Kind {
		case aop.FieldSet:
			val = ctx.Arg(0)
		case aop.FieldGet:
			val = ctx.Result
		default:
			val = ctx.Result
		}
		_, err := hostCall(host, "store.put", lvm.Str(key), lvm.Str(val.String()))
		return err
	}), nil
}

func objectSuffix(ctx *aop.Context) string {
	if ctx.Self == nil {
		return ""
	}
	if id, ok := ctx.Self.FieldByName("id"); ok && id.K == lvm.KStr && id.S != "" {
		return "/" + id.S
	}
	return ""
}

// ExtraTxnManager is the Env.Extras key under which nodes expose their
// transaction manager to the txn builtin.
const ExtraTxnManager = "txn.manager"

// newTxn is the ad-hoc transaction extension ([PA02], measured in §4.6): the
// same builtin is woven as a call-before advice (begins a transaction and
// attaches it to the join-point context) and as a call-after advice (records
// the result under the configured key and commits). An abort anywhere in
// between simply never commits. Config:
//
//	key: KV key the method result is transactionally recorded under
//	     (default "txn/<Class>.<method>")
//
// Requires the store capability and a *txn.Manager in Env.Extras.
func newTxn(env *core.Env, cfg map[string]string) (aop.Body, error) {
	mgrAny, ok := env.Extras[ExtraTxnManager]
	if !ok {
		return nil, fmt.Errorf("ext: txn needs a transaction manager on this node")
	}
	mgr, ok := mgrAny.(*txn.Manager)
	if !ok {
		return nil, fmt.Errorf("ext: txn manager has wrong type %T", mgrAny)
	}
	// The manager writes the node KV directly, bypassing host gating, so
	// insist the store capability was actually granted.
	if gated, ok := env.Host.(*sandbox.Host); ok && !gated.Perms().Allows(sandbox.CapStore) {
		return nil, fmt.Errorf("ext: txn requires the store capability")
	}
	key := cfg["key"]
	return aop.BodyFunc(func(ctx *aop.Context) error {
		switch ctx.Kind {
		case aop.MethodEntry:
			ctx.Attach(ExtraTxnManager, mgr.Begin())
		case aop.MethodExit:
			v, ok := ctx.Attachment(ExtraTxnManager)
			if !ok {
				return nil // entry advice not woven; nothing to commit
			}
			tx, ok := v.(*txn.Txn)
			if !ok {
				return nil
			}
			ctx.Detach(ExtraTxnManager)
			k := key
			if k == "" {
				k = "txn/" + ctx.Sig.Class + "." + ctx.Sig.Method
			}
			if err := tx.Put(k, []byte(ctx.Result.String())); err != nil {
				return err
			}
			return tx.Commit()
		}
		return nil
	}), nil
}
