package ext

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/aop"
	"repro/internal/core"
	"repro/internal/lvm"
	"repro/internal/sandbox"
	"repro/internal/svc"
)

// Builtin advice names.
const (
	BSession       = "session"
	BAccessControl = "accesscontrol"
	BLogger        = "logger"
	BMonitor       = "hwmonitor"
	BEncrypt       = "encrypt"
	BDecrypt       = "decrypt"
	BPersist       = "persist"
	BTxn           = "txn"
	BMoveControl   = "movecontrol"
	BReplicate     = "replicate"
	BAccounting    = "accounting"
	BAgeCheck      = "agecheck"
)

// SessionCallerKey is the context metadata key under which the session
// extension publishes the authenticated caller identity.
const SessionCallerKey = "session.caller"

// SessionBundleName names the implicit session-management extension.
const SessionBundleName = "session"

// Each builtin's run-time capability demand is declared for admission-time
// checking: builtins are native Go, so the base's static analyzer cannot
// infer these from bytecode the way it does for mobile advice. This runs at
// package init (not in RegisterAll) because base stations admit extensions
// without ever installing the receiver-side factories. Namespaces the
// sandbox always grants (ctx, log) are omitted.
func init() {
	core.RegisterBuiltinCaps(BSession)
	core.RegisterBuiltinCaps(BAccessControl)
	core.RegisterBuiltinCaps(BLogger)
	core.RegisterBuiltinCaps(BMonitor, sandbox.CapClock, sandbox.CapNet)
	core.RegisterBuiltinCaps(BEncrypt)
	core.RegisterBuiltinCaps(BDecrypt)
	core.RegisterBuiltinCaps(BPersist, sandbox.CapStore)
	core.RegisterBuiltinCaps(BTxn)
	core.RegisterBuiltinCaps(BMoveControl)
	core.RegisterBuiltinCaps(BReplicate, sandbox.CapNet)
	core.RegisterBuiltinCaps(BAccounting, sandbox.CapClock, sandbox.CapNet)
	core.RegisterBuiltinCaps(BAgeCheck, sandbox.CapClock)
}

// RegisterAll installs every builtin factory and the implicit bundles into b.
func RegisterAll(b *core.Builtins) {
	b.Register(BSession, newSession)
	b.Register(BAccessControl, newAccessControl)
	b.Register(BLogger, newLogger)
	b.Register(BMonitor, newMonitor)
	b.Register(BEncrypt, newEncrypt)
	b.Register(BDecrypt, newDecrypt)
	b.Register(BPersist, newPersist)
	b.Register(BTxn, newTxn)
	b.Register(BMoveControl, newMoveControl)
	b.Register(BReplicate, newReplicate)
	b.Register(BAccounting, newAccounting)
	b.Register(BAgeCheck, newAgeCheck)

	// The implicit session-management extension (§3.3): automatically added
	// whenever an extension Requires session information. It runs at very
	// low priority so it precedes everything that reads the session.
	b.RegisterBundle(core.Extension{
		ID:       "system/session",
		Name:     SessionBundleName,
		Version:  1,
		Priority: -100,
		Advices: []core.AdviceSpec{{
			Name:    "extract-session",
			Kind:    core.KindCallBefore,
			Pattern: "*.*(..)",
			Builtin: BSession,
		}},
		Caps: []string{string(sandbox.CapSession)},
	})
}

// newSession extracts session information (the caller identity provided by
// the transport layer) and publishes it for downstream extensions — the
// first interception in Fig. 2.
func newSession(_ *core.Env, _ map[string]string) (aop.Body, error) {
	return aop.BodyFunc(func(ctx *aop.Context) error {
		if _, have := ctx.Get(SessionCallerKey); have {
			return nil
		}
		if v, ok := ctx.Get(svc.MetaCaller); ok {
			ctx.Put(SessionCallerKey, v)
		}
		return nil
	}), nil
}

// newAccessControl denies calls whose session caller is not authorised — the
// second interception in Fig. 2. Config:
//
//	allow: comma-separated caller list, or "*" for everyone with a session
//	deny:  comma-separated caller list checked first
func newAccessControl(_ *core.Env, cfg map[string]string) (aop.Body, error) {
	allow := splitList(cfg["allow"])
	deny := splitList(cfg["deny"])
	allowAll := len(allow) == 1 && allow[0] == "*"
	if len(allow) == 0 && len(deny) == 0 {
		return nil, fmt.Errorf("ext: accesscontrol needs an allow or deny list")
	}
	allowed := make(map[string]bool, len(allow))
	for _, a := range allow {
		allowed[a] = true
	}
	denied := make(map[string]bool, len(deny))
	for _, d := range deny {
		denied[d] = true
	}
	return aop.BodyFunc(func(ctx *aop.Context) error {
		who, ok := ctx.Get(SessionCallerKey)
		if !ok || who.S == "" {
			ctx.Abortf("access denied: no session information for %s.%s", ctx.Sig.Class, ctx.Sig.Method)
			return nil
		}
		if denied[who.S] {
			ctx.Abortf("access denied for %q", who.S)
			return nil
		}
		if !allowAll && !allowed[who.S] {
			ctx.Abortf("access denied for %q", who.S)
			return nil
		}
		return nil
	}), nil
}

// newLogger records every interception through the node's log sink. Config:
//
//	prefix: tag prepended to each line
func newLogger(env *core.Env, cfg map[string]string) (aop.Body, error) {
	prefix := cfg["prefix"]
	host := env.Host
	return aop.BodyFunc(func(ctx *aop.Context) error {
		line := prefix + ctx.Kind.String() + " " + ctx.Sig.Class + "." + ctx.Sig.Method
		if ctx.Field != "" {
			line += "#" + ctx.Field
		}
		_, err := hostCall(host, "log.info", lvm.Str(line))
		return err
	}), nil
}

// newMoveControl vetoes movements outside the configured envelope — "one may
// forbid movements beyond certain coordinates" (§4.5, Control). Config:
//
//	min, max: inclusive bounds on the first integer argument
func newMoveControl(_ *core.Env, cfg map[string]string) (aop.Body, error) {
	minV, err := cfgInt(cfg, "min", -1<<62)
	if err != nil {
		return nil, err
	}
	maxV, err := cfgInt(cfg, "max", 1<<62-1)
	if err != nil {
		return nil, err
	}
	if minV > maxV {
		return nil, fmt.Errorf("ext: movecontrol min %d > max %d", minV, maxV)
	}
	return aop.BodyFunc(func(ctx *aop.Context) error {
		v := ctx.Arg(0).AsInt()
		if v < minV || v > maxV {
			ctx.Abortf("movement %d outside allowed range [%d, %d]", v, minV, maxV)
		}
		return nil
	}), nil
}

// newAgeCheck trusts a device only after it has existed in the environment
// for a minimum age (§4.6's device-age example). The birth date is recorded
// when the extension is instantiated. Config:
//
//	min-age-millis: minimum age before calls are allowed
func newAgeCheck(env *core.Env, cfg map[string]string) (aop.Body, error) {
	minAge, err := cfgInt(cfg, "min-age-millis", 0)
	if err != nil {
		return nil, err
	}
	birth, err := hostCall(env.Host, "clock.now")
	if err != nil {
		return nil, fmt.Errorf("ext: agecheck needs the clock capability: %w", err)
	}
	host := env.Host
	return aop.BodyFunc(func(ctx *aop.Context) error {
		now, err := hostCall(host, "clock.now")
		if err != nil {
			return err
		}
		if now.AsInt()-birth.AsInt() < minAge {
			ctx.Abortf("device age %dms below required %dms", now.AsInt()-birth.AsInt(), minAge)
		}
		return nil
	}), nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func cfgInt(cfg map[string]string, key string, def int64) (int64, error) {
	s, ok := cfg[key]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("ext: config %s=%q is not an integer", key, s)
	}
	return v, nil
}
