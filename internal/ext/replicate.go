package ext

import (
	"fmt"

	"repro/internal/aop"
	"repro/internal/core"
	"repro/internal/lvm"
)

// newReplicate is the remote-replication application of §4.5: every
// intercepted movement is forwarded to an identical robot at another
// location, optionally re-scaled ("amplify or reduce the extracted sequence
// of movements to adjust it to the new scale"). Config:
//
//	peer:    transport address of the mirror robot's service (required)
//	service: remote service name (default: the intercepted class)
//	scale:   percentage applied to the movement value (default 100)
//
// Requires the net capability.
func newReplicate(env *core.Env, cfg map[string]string) (aop.Body, error) {
	peer := cfg["peer"]
	if peer == "" {
		return nil, fmt.Errorf("ext: replicate needs a peer address")
	}
	scale, err := cfgInt(cfg, "scale", 100)
	if err != nil {
		return nil, err
	}
	if scale <= 0 {
		return nil, fmt.Errorf("ext: replicate scale must be positive")
	}
	service := cfg["service"]
	host := env.Host
	node := env.NodeName
	return aop.BodyFunc(func(ctx *aop.Context) error {
		target := service
		if target == "" {
			target = ctx.Sig.Class
		}
		value := ctx.Arg(0).AsInt() * scale / 100
		_, err := hostCall(host, "net.replicate",
			lvm.Str(peer), lvm.Str(target), lvm.Str(ctx.Sig.Method),
			lvm.Str(node), lvm.Int(value))
		return err
	}), nil
}

// newAccounting is the billing extension from §1: mobile devices are charged
// for the use of services in a location. Each completed call posts a billing
// record (caller, price) to the base station. Config:
//
//	price: charge per call (default 1)
//
// Requires the net and clock capabilities.
func newAccounting(env *core.Env, cfg map[string]string) (aop.Body, error) {
	price, err := cfgInt(cfg, "price", 1)
	if err != nil {
		return nil, err
	}
	host := env.Host
	baseAddr := env.BaseAddr
	node := env.NodeName
	return aop.BodyFunc(func(ctx *aop.Context) error {
		who := "unknown"
		if v, ok := ctx.Get(SessionCallerKey); ok && v.S != "" {
			who = v.S
		}
		now, err := hostCall(host, "clock.now")
		if err != nil {
			return err
		}
		_, err = hostCall(host, "net.post",
			lvm.Str(baseAddr), lvm.Str(node), lvm.Str("billing"),
			lvm.Str("charge:"+who), lvm.Int(price), now, lvm.Int(0))
		return err
	}), nil
}
