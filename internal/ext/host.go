// Package ext provides the built-in extension library of the platform: the
// advice factories (session management, access control, hardware monitoring,
// encryption, orthogonal persistence, ad-hoc transactions, movement control,
// replication, accounting, device-age trust) that extension bases configure
// and distribute, plus the node host environment their sandboxed bodies call
// into.
package ext

import (
	"context"
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lvm"
	"repro/internal/store"
	"repro/internal/svc"
	"repro/internal/transport"
)

// NodeHostConfig wires the host environment of one node.
type NodeHostConfig struct {
	Caller transport.Caller // for net.* functions; may be nil on isolated nodes
	KV     *store.KV        // for store.* functions; may be nil
	Clock  clock.Clock      // defaults to the real clock
	Log    func(string)     // sink for log.info; defaults to discard
}

// NewNodeHost builds the standard host function table. Callers may add
// further functions (e.g. device.* from the robot layer) to the returned map
// before handing it to the receiver. Every function is namespaced so the
// sandbox can gate it by capability.
func NewNodeHost(cfg NodeHostConfig) lvm.HostMap {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string) {}
	}

	h := lvm.HostMap{
		"clock.now": func(args []lvm.Value) (lvm.Value, error) {
			return lvm.Int(clk.Now().UnixMilli()), nil
		},
		"log.info": func(args []lvm.Value) (lvm.Value, error) {
			msg := ""
			for i, a := range args {
				if i > 0 {
					msg += " "
				}
				msg += a.String()
			}
			logf(msg)
			return lvm.Nil(), nil
		},
	}

	if cfg.KV != nil {
		kv := cfg.KV
		h["store.put"] = func(args []lvm.Value) (lvm.Value, error) {
			if len(args) != 2 {
				return lvm.Nil(), lvm.Throwf("store.put needs key and value")
			}
			if err := kv.Put(args[0].String(), []byte(args[1].String())); err != nil {
				return lvm.Nil(), lvm.Throwf("store.put: %v", err)
			}
			return lvm.Bool(true), nil
		}
		h["store.get"] = func(args []lvm.Value) (lvm.Value, error) {
			if len(args) != 1 {
				return lvm.Nil(), lvm.Throwf("store.get needs a key")
			}
			v, ok := kv.Get(args[0].String())
			if !ok {
				return lvm.Nil(), nil
			}
			return lvm.Str(string(v)), nil
		}
	}

	if cfg.Caller != nil {
		caller := cfg.Caller
		// net.post(baseAddr, robot, device, action, value, at, dur) delivers
		// one monitoring record to a base station's store.
		h["net.post"] = func(args []lvm.Value) (lvm.Value, error) {
			if len(args) != 7 {
				return lvm.Nil(), lvm.Throwf("net.post needs 7 arguments")
			}
			rec := store.Record{
				Robot:    args[1].String(),
				Device:   args[2].String(),
				Action:   args[3].String(),
				Value:    args[4].AsInt(),
				AtMillis: args[5].AsInt(),
				DurMilli: args[6].AsInt(),
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_, err := transport.Invoke[core.PostReq, core.EmptyResp](ctx, caller, args[0].String(), core.MethodBasePost, core.PostReq{Record: rec})
			if err != nil {
				return lvm.Nil(), lvm.Throwf("net.post: %v", err)
			}
			return lvm.Bool(true), nil
		}
		// net.replicate(peerAddr, service, method, caller, value) forwards a
		// movement to a mirror robot.
		h["net.replicate"] = func(args []lvm.Value) (lvm.Value, error) {
			if len(args) != 5 {
				return lvm.Nil(), lvm.Throwf("net.replicate needs 5 arguments")
			}
			_, err := svc.Call(caller, args[0].String(), args[1].String(), args[2].String(), args[3].String(), args[4])
			if err != nil {
				return lvm.Nil(), lvm.Throwf("net.replicate: %v", err)
			}
			return lvm.Bool(true), nil
		}
	}
	return h
}

// hostCall is a small helper for builtins calling gated host functions.
func hostCall(h lvm.Host, name string, args ...lvm.Value) (lvm.Value, error) {
	if h == nil {
		return lvm.Nil(), fmt.Errorf("ext: no host environment")
	}
	return h.HostCall(name, args)
}
