package ext

import (
	"sync"

	"repro/internal/aop"
	"repro/internal/core"
	"repro/internal/lvm"
)

// monitorQueue bounds the async posting buffer.
const monitorQueue = 256

// newMonitor is the hardware monitoring and logging extension of §4.4
// (Fig. 3b and Fig. 5): every intercepted action is turned into a record
// (robot identity, device, action, value, timestamp) and posted to the base
// station that installed the extension, where it lands in the movement
// database. Config:
//
//	mode:  "async" (default) buffers and posts in the background;
//	       "sync" posts inline before the action proceeds
//	robot: overrides the reported robot identity (default: node name)
//
// Requires the net and clock capabilities. The async body implements the
// shutdown procedure of §3.2: pending records are flushed before the
// extension is discarded.
func newMonitor(env *core.Env, cfg map[string]string) (aop.Body, error) {
	robot := cfg["robot"]
	if robot == "" {
		robot = env.NodeName
	}
	m := &monitorBody{
		host:     env.Host,
		baseAddr: env.BaseAddr,
		robot:    robot,
		sync:     cfg["mode"] == "sync",
	}
	if !m.sync {
		m.queue = make(chan record, monitorQueue)
		m.done = make(chan struct{})
		go m.drain()
	}
	return m, nil
}

type record struct {
	device string
	action string
	value  int64
	at     int64
}

type monitorBody struct {
	host     lvm.Host
	baseAddr string
	robot    string
	sync     bool

	queue chan record
	done  chan struct{}

	mu      sync.Mutex
	dropped int64
	posted  int64
	closed  bool
}

// Exec implements aop.Body.
func (m *monitorBody) Exec(ctx *aop.Context) error {
	now, err := hostCall(m.host, "clock.now")
	if err != nil {
		return err
	}
	rec := record{at: now.AsInt()}
	switch ctx.Kind {
	case aop.FieldGet, aop.FieldSet:
		rec.device = ctx.Sig.Class + deviceSuffix(ctx)
		rec.action = "set:" + ctx.Field
		rec.value = ctx.Arg(0).AsInt()
		if ctx.Kind == aop.FieldGet {
			rec.action = "get:" + ctx.Field
			rec.value = ctx.Result.AsInt()
		}
	default:
		rec.device = ctx.Sig.Class + deviceSuffix(ctx)
		rec.action = ctx.Sig.Method
		rec.value = ctx.Arg(0).AsInt()
	}
	if m.sync {
		return m.post(rec)
	}
	// The send happens under the mutex so Shutdown cannot close the queue
	// between the closed-check and the send.
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	select {
	case m.queue <- rec:
	default:
		m.dropped++
	}
	return nil
}

// deviceSuffix appends the self object's id field when present, producing
// identities like "Motor:x".
func deviceSuffix(ctx *aop.Context) string {
	if ctx.Self == nil {
		return ""
	}
	if id, ok := ctx.Self.FieldByName("id"); ok && id.K == lvm.KStr && id.S != "" {
		return ":" + id.S
	}
	return ""
}

func (m *monitorBody) post(rec record) error {
	_, err := hostCall(m.host, "net.post",
		lvm.Str(m.baseAddr), lvm.Str(m.robot), lvm.Str(rec.device),
		lvm.Str(rec.action), lvm.Int(rec.value), lvm.Int(rec.at), lvm.Int(0))
	if err == nil {
		m.mu.Lock()
		m.posted++
		m.mu.Unlock()
	}
	return err
}

func (m *monitorBody) drain() {
	defer close(m.done)
	for rec := range m.queue {
		_ = m.post(rec) // best effort; base may be briefly unreachable
	}
}

// Shutdown implements core.ShutdownBody: flush pending records so the base
// has a consistent movement history before the extension is discarded.
func (m *monitorBody) Shutdown() {
	if m.sync {
		return
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.queue)
	<-m.done
}

// Stats reports posted and dropped record counts (for tests and benches).
func (m *monitorBody) Stats() (posted, dropped int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.posted, m.dropped
}
