package ext

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/aop"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lvm"
	"repro/internal/store"
	"repro/internal/svc"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/weave"
)

func testEnv(t *testing.T, host lvm.Host) *core.Env {
	t.Helper()
	return &core.Env{NodeName: "robot1", BaseAddr: "base-1", Host: host}
}

func mustBody(t *testing.T, f core.Factory, env *core.Env, cfg map[string]string) aop.Body {
	t.Helper()
	b, err := f(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRegisterAllProvidesBundles(t *testing.T) {
	b := core.NewBuiltins()
	RegisterAll(b)
	if _, ok := b.Bundle(SessionBundleName); !ok {
		t.Fatal("session bundle missing")
	}
	env := testEnv(t, lvm.HostMap{})
	for _, name := range []string{BSession, BLogger} {
		if _, err := b.New(name, env, nil); err != nil {
			t.Errorf("builtin %s: %v", name, err)
		}
	}
}

func TestSessionPublishesCaller(t *testing.T) {
	body := mustBody(t, newSession, testEnv(t, nil), nil)
	ctx := &aop.Context{}
	ctx.Put(svc.MetaCaller, lvm.Str("alice"))
	if err := body.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	v, ok := ctx.Get(SessionCallerKey)
	if !ok || v.S != "alice" {
		t.Errorf("session caller = %v, %v", v, ok)
	}
	// Without transport metadata, nothing is published.
	ctx2 := &aop.Context{}
	if err := body.Exec(ctx2); err != nil {
		t.Fatal(err)
	}
	if _, ok := ctx2.Get(SessionCallerKey); ok {
		t.Error("caller published without transport info")
	}
}

func TestAccessControl(t *testing.T) {
	env := testEnv(t, nil)
	body := mustBody(t, newAccessControl, env, map[string]string{"allow": "alice, bob"})

	run := func(caller string) error {
		ctx := &aop.Context{Sig: aop.Signature{Class: "Robot", Method: "moveArm"}}
		if caller != "" {
			ctx.Put(SessionCallerKey, lvm.Str(caller))
		}
		if err := body.Exec(ctx); err != nil {
			return err
		}
		return ctx.Aborted()
	}

	if err := run("alice"); err != nil {
		t.Errorf("alice denied: %v", err)
	}
	if err := run("bob"); err != nil {
		t.Errorf("bob denied: %v", err)
	}
	if err := run("mallory"); err == nil {
		t.Error("mallory allowed")
	}
	if err := run(""); err == nil || !strings.Contains(err.Error(), "no session") {
		t.Errorf("missing session: %v", err)
	}

	// Deny list beats allow-all.
	deny := mustBody(t, newAccessControl, env, map[string]string{"allow": "*", "deny": "mallory"})
	ctx := &aop.Context{}
	ctx.Put(SessionCallerKey, lvm.Str("mallory"))
	if err := deny.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Aborted() == nil {
		t.Error("deny list ignored")
	}

	if _, err := newAccessControl(env, nil); err == nil {
		t.Error("empty config should fail")
	}
}

func TestLogger(t *testing.T) {
	var lines []string
	host := lvm.HostMap{"log.info": func(args []lvm.Value) (lvm.Value, error) {
		lines = append(lines, args[0].S)
		return lvm.Nil(), nil
	}}
	body := mustBody(t, newLogger, testEnv(t, host), map[string]string{"prefix": "[x] "})
	ctx := &aop.Context{Kind: aop.MethodEntry, Sig: aop.Signature{Class: "Motor", Method: "rotate"}}
	if err := body.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0] != "[x] method-entry Motor.rotate" {
		t.Errorf("lines = %v", lines)
	}
}

func TestMoveControl(t *testing.T) {
	body := mustBody(t, newMoveControl, testEnv(t, nil), map[string]string{"min": "-90", "max": "90"})
	ok := &aop.Context{Args: []lvm.Value{lvm.Int(45)}}
	if err := body.Exec(ok); err != nil || ok.Aborted() != nil {
		t.Errorf("45 rejected: %v %v", err, ok.Aborted())
	}
	bad := &aop.Context{Args: []lvm.Value{lvm.Int(180)}}
	if err := body.Exec(bad); err != nil {
		t.Fatal(err)
	}
	if bad.Aborted() == nil {
		t.Error("180 allowed")
	}
	if _, err := newMoveControl(testEnv(t, nil), map[string]string{"min": "5", "max": "1"}); err == nil {
		t.Error("min>max accepted")
	}
	if _, err := newMoveControl(testEnv(t, nil), map[string]string{"min": "abc"}); err == nil {
		t.Error("non-numeric accepted")
	}
}

func TestAgeCheck(t *testing.T) {
	clk := clock.NewManual(time.UnixMilli(1_000_000))
	host := NewNodeHost(NodeHostConfig{Clock: clk})
	body := mustBody(t, newAgeCheck, testEnv(t, host), map[string]string{"min-age-millis": "5000"})

	young := &aop.Context{}
	if err := body.Exec(young); err != nil {
		t.Fatal(err)
	}
	if young.Aborted() == nil {
		t.Error("young device trusted")
	}
	clk.Advance(6 * time.Second)
	old := &aop.Context{}
	if err := body.Exec(old); err != nil {
		t.Fatal(err)
	}
	if old.Aborted() != nil {
		t.Errorf("aged device rejected: %v", old.Aborted())
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	env := testEnv(t, nil)
	enc := mustBody(t, newEncrypt, env, map[string]string{"key": "secret"})
	dec := mustBody(t, newDecrypt, env, map[string]string{"key": "secret"})

	plain := []byte("move the arm 30 degrees")
	ctx := &aop.Context{Kind: aop.MethodEntry, Args: []lvm.Value{lvm.Str("hdr"), lvm.Bytes(append([]byte(nil), plain...))}}
	if err := enc.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	cipherText := ctx.Arg(1).B
	if string(cipherText) == string(plain) {
		t.Fatal("payload not encrypted")
	}
	// Incoming-call decryption restores the argument.
	if err := dec.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	if string(ctx.Arg(1).B) != string(plain) {
		t.Errorf("roundtrip = %q", ctx.Arg(1).B)
	}

	// Result decryption at method exit.
	ctx2 := &aop.Context{Kind: aop.MethodExit, Result: lvm.Bytes(cipherText)}
	if err := dec.Exec(ctx2); err != nil {
		t.Fatal(err)
	}
	if string(ctx2.Result.B) != string(plain) {
		t.Errorf("result roundtrip = %q", ctx2.Result.B)
	}

	// Wrong key fails to restore.
	wrong := mustBody(t, newDecrypt, env, map[string]string{"key": "other"})
	ctx3 := &aop.Context{Kind: aop.MethodExit, Result: lvm.Bytes(append([]byte(nil), cipherText...))}
	if err := wrong.Exec(ctx3); err != nil {
		t.Fatal(err)
	}
	if string(ctx3.Result.B) == string(plain) {
		t.Error("wrong key decrypted payload")
	}

	if _, err := newEncrypt(env, nil); err == nil {
		t.Error("missing key accepted")
	}
}

func TestPersist(t *testing.T) {
	kv := store.NewKV()
	host := NewNodeHost(NodeHostConfig{KV: kv})
	body := mustBody(t, newPersist, testEnv(t, host), nil)

	motor := lvm.NewClass("Motor")
	motor.AddField("id")
	motor.AddField("pos")
	obj := motor.New()
	obj.SetFieldByName("id", lvm.Str("x"))

	ctx := &aop.Context{
		Kind:  aop.FieldSet,
		Sig:   aop.Signature{Class: "Motor"},
		Field: "pos",
		Self:  obj,
		Args:  []lvm.Value{lvm.Int(42)},
	}
	if err := body.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	v, found := kv.Get("persist/Motor.pos/x")
	if !found || string(v) != "42" {
		t.Errorf("persisted = %q, %v (keys %v)", v, found, kv.Keys())
	}
}

func TestTxnCommitsAroundCall(t *testing.T) {
	kv := store.NewKV()
	mgr := txn.NewManager(kv)
	host := NewNodeHost(NodeHostConfig{KV: kv})
	env := &core.Env{NodeName: "n", Host: host, Extras: map[string]any{ExtraTxnManager: mgr}}
	body := mustBody(t, newTxn, env, map[string]string{"key": "last-result"})

	ctx := &aop.Context{Kind: aop.MethodEntry, Sig: aop.Signature{Class: "Robot", Method: "task"}}
	if err := body.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	ctx.Kind = aop.MethodExit
	ctx.Result = lvm.Int(7)
	if err := body.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	v, ok := kv.Get("last-result")
	if !ok || string(v) != "7" {
		t.Errorf("kv = %q, %v", v, ok)
	}
	commits, _ := mgr.Stats()
	if commits != 1 {
		t.Errorf("commits = %d", commits)
	}

	// Without a manager the builtin refuses to build.
	if _, err := newTxn(&core.Env{Host: host}, nil); err == nil {
		t.Error("txn without manager accepted")
	}
}

func TestMonitorSyncPostsToBase(t *testing.T) {
	fabric := transport.NewInProc()
	st := store.NewMemory()
	baseMux := transport.NewMux()
	transport.Register(baseMux, core.MethodBasePost, func(_ context.Context, req core.PostReq) (core.EmptyResp, error) {
		_, err := st.Append(req.Record)
		return core.EmptyResp{}, err
	})
	stop, _ := fabric.Serve("base-1", baseMux)
	defer stop()

	host := NewNodeHost(NodeHostConfig{Caller: fabric.Node("robot1"), Clock: clock.NewManual(time.UnixMilli(5000))})
	body := mustBody(t, newMonitor, testEnv(t, host), map[string]string{"mode": "sync"})

	motor := lvm.NewClass("Motor")
	motor.AddField("id")
	obj := motor.New()
	obj.SetFieldByName("id", lvm.Str("x"))

	ctx := &aop.Context{
		Kind: aop.MethodEntry,
		Sig:  aop.Signature{Class: "Motor", Method: "rotate"},
		Self: obj,
		Args: []lvm.Value{lvm.Int(30)},
	}
	if err := body.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	recs := st.Query(store.Filter{Robot: "robot1"})
	if len(recs) != 1 {
		t.Fatalf("records = %+v", recs)
	}
	r := recs[0]
	if r.Device != "Motor:x" || r.Action != "rotate" || r.Value != 30 || r.AtMillis != 5000 {
		t.Errorf("record = %+v", r)
	}
}

func TestMonitorAsyncFlushOnShutdown(t *testing.T) {
	fabric := transport.NewInProc()
	st := store.NewMemory()
	baseMux := transport.NewMux()
	transport.Register(baseMux, core.MethodBasePost, func(_ context.Context, req core.PostReq) (core.EmptyResp, error) {
		_, err := st.Append(req.Record)
		return core.EmptyResp{}, err
	})
	stop, _ := fabric.Serve("base-1", baseMux)
	defer stop()

	host := NewNodeHost(NodeHostConfig{Caller: fabric.Node("robot1"), Clock: clock.Real{}})
	body := mustBody(t, newMonitor, testEnv(t, host), nil) // async default

	for i := 0; i < 20; i++ {
		ctx := &aop.Context{
			Kind: aop.MethodEntry,
			Sig:  aop.Signature{Class: "Motor", Method: "rotate"},
			Args: []lvm.Value{lvm.Int(int64(i))},
		}
		if err := body.Exec(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Shutdown (the §3.2 shutdown procedure) must flush everything pending.
	body.(*monitorBody).Shutdown()
	if st.Len() != 20 {
		t.Errorf("flushed %d records, want 20", st.Len())
	}
	// Exec after shutdown is a silent no-op.
	if err := body.Exec(&aop.Context{Kind: aop.MethodEntry, Sig: aop.Signature{Class: "Motor", Method: "r"}}); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorFieldJoinPoints(t *testing.T) {
	fabric := transport.NewInProc()
	st := store.NewMemory()
	baseMux := transport.NewMux()
	transport.Register(baseMux, core.MethodBasePost, func(_ context.Context, req core.PostReq) (core.EmptyResp, error) {
		_, err := st.Append(req.Record)
		return core.EmptyResp{}, err
	})
	stop, _ := fabric.Serve("base-1", baseMux)
	defer stop()

	host := NewNodeHost(NodeHostConfig{Caller: fabric.Node("robot1"), Clock: clock.Real{}})
	body := mustBody(t, newMonitor, testEnv(t, host), map[string]string{"mode": "sync"})

	setCtx := &aop.Context{Kind: aop.FieldSet, Sig: aop.Signature{Class: "Motor"}, Field: "pos", Args: []lvm.Value{lvm.Int(7)}}
	if err := body.Exec(setCtx); err != nil {
		t.Fatal(err)
	}
	getCtx := &aop.Context{Kind: aop.FieldGet, Sig: aop.Signature{Class: "Motor"}, Field: "pos", Result: lvm.Int(7)}
	if err := body.Exec(getCtx); err != nil {
		t.Fatal(err)
	}
	recs := st.Query(store.Filter{})
	if len(recs) != 2 || recs[0].Action != "set:pos" || recs[1].Action != "get:pos" {
		t.Errorf("records = %+v", recs)
	}
}

func TestReplicateForwardsScaled(t *testing.T) {
	fabric := transport.NewInProc()
	mirrorWeaver := weave.New()
	mirror := svc.NewRegistry(mirrorWeaver)
	var got []int64
	mirror.Register("Plotter", "rotate", []string{"int"}, "void", func(args []lvm.Value) (lvm.Value, error) {
		got = append(got, args[0].I)
		return lvm.Nil(), nil
	})
	mux := transport.NewMux()
	mirror.ServeOn(mux)
	stop, _ := fabric.Serve("mirror", mux)
	defer stop()

	host := NewNodeHost(NodeHostConfig{Caller: fabric.Node("robot1")})
	body := mustBody(t, newReplicate, testEnv(t, host), map[string]string{
		"peer": "mirror", "service": "Plotter", "scale": "50",
	})
	ctx := &aop.Context{
		Kind: aop.MethodExit,
		Sig:  aop.Signature{Class: "Motor", Method: "rotate"},
		Args: []lvm.Value{lvm.Int(30)},
	}
	if err := body.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 15 {
		t.Errorf("mirror got %v, want [15]", got)
	}

	if _, err := newReplicate(testEnv(t, host), nil); err == nil {
		t.Error("missing peer accepted")
	}
	if _, err := newReplicate(testEnv(t, host), map[string]string{"peer": "p", "scale": "0"}); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestAccountingPostsCharges(t *testing.T) {
	fabric := transport.NewInProc()
	st := store.NewMemory()
	baseMux := transport.NewMux()
	transport.Register(baseMux, core.MethodBasePost, func(_ context.Context, req core.PostReq) (core.EmptyResp, error) {
		_, err := st.Append(req.Record)
		return core.EmptyResp{}, err
	})
	stop, _ := fabric.Serve("base-1", baseMux)
	defer stop()

	host := NewNodeHost(NodeHostConfig{Caller: fabric.Node("robot1"), Clock: clock.Real{}})
	body := mustBody(t, newAccounting, testEnv(t, host), map[string]string{"price": "3"})

	ctx := &aop.Context{Kind: aop.MethodExit, Sig: aop.Signature{Class: "Robot", Method: "moveArm"}}
	ctx.Put(SessionCallerKey, lvm.Str("alice"))
	if err := body.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	recs := st.Query(store.Filter{Device: "billing"})
	if len(recs) != 1 || recs[0].Action != "charge:alice" || recs[0].Value != 3 {
		t.Errorf("billing = %+v", recs)
	}
}

func TestNodeHostStoreFunctions(t *testing.T) {
	kv := store.NewKV()
	host := NewNodeHost(NodeHostConfig{KV: kv})
	if _, err := host.HostCall("store.put", []lvm.Value{lvm.Str("k"), lvm.Str("v")}); err != nil {
		t.Fatal(err)
	}
	v, err := host.HostCall("store.get", []lvm.Value{lvm.Str("k")})
	if err != nil || v.S != "v" {
		t.Fatalf("store.get = %v, %v", v, err)
	}
	missing, err := host.HostCall("store.get", []lvm.Value{lvm.Str("none")})
	if err != nil || missing.K != lvm.KNil {
		t.Errorf("missing = %v, %v", missing, err)
	}
}
