package ext

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"fmt"

	"repro/internal/aop"
	"repro/internal/core"
	"repro/internal/lvm"
)

// newEncrypt is the transparent encryption extension of §3.3: "it is very
// easy to design an extension that will encrypt every outgoing call". It
// rewrites the first bytes argument of intercepted calls with an AES-CTR
// keystream derived from the configured key. Because CTR is an involution,
// the same builtin configured on the receiving side (newDecrypt, applied to
// the result or the incoming argument) restores the plaintext.
//
// Config:
//
//	key: shared secret (required)
//
// Note: the keystream is deterministic per key (fixed IV); this demonstrates
// transparent interception, not a production wire protocol.
func newEncrypt(_ *core.Env, cfg map[string]string) (aop.Body, error) {
	xform, err := keystreamFunc(cfg)
	if err != nil {
		return nil, err
	}
	return aop.BodyFunc(func(ctx *aop.Context) error {
		for i := range ctx.Args {
			if ctx.Args[i].K == lvm.KBytes {
				ctx.SetArg(i, lvm.Bytes(xform(ctx.Args[i].B)))
				break
			}
		}
		return nil
	}), nil
}

// newDecrypt restores a payload transformed by newEncrypt. At method-exit
// join points it rewrites a bytes result; at method-entry join points it
// rewrites the first bytes argument (incoming call decryption).
func newDecrypt(_ *core.Env, cfg map[string]string) (aop.Body, error) {
	xform, err := keystreamFunc(cfg)
	if err != nil {
		return nil, err
	}
	return aop.BodyFunc(func(ctx *aop.Context) error {
		if ctx.Kind == aop.MethodExit && ctx.Result.K == lvm.KBytes {
			ctx.SetResult(lvm.Bytes(xform(ctx.Result.B)))
			return nil
		}
		for i := range ctx.Args {
			if ctx.Args[i].K == lvm.KBytes {
				ctx.SetArg(i, lvm.Bytes(xform(ctx.Args[i].B)))
				break
			}
		}
		return nil
	}), nil
}

// keystreamFunc builds the AES-CTR transform for the configured key.
func keystreamFunc(cfg map[string]string) (func([]byte) []byte, error) {
	key := cfg["key"]
	if key == "" {
		return nil, fmt.Errorf("ext: encryption needs a key")
	}
	digest := sha256.Sum256([]byte(key))
	block, err := aes.NewCipher(digest[:16])
	if err != nil {
		return nil, fmt.Errorf("ext: cipher: %w", err)
	}
	iv := digest[16:32]
	return func(in []byte) []byte {
		out := make([]byte, len(in))
		stream := cipher.NewCTR(block, iv)
		stream.XORKeyStream(out, in)
		return out
	}, nil
}
