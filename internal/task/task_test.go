package task

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/robot"
	"repro/internal/weave"
)

func newRunner(t *testing.T) (*robot.Controller, *Runner) {
	t.Helper()
	c := robot.NewController(weave.New(), nil)
	if _, err := c.AddMotor("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddMotor("y"); err != nil {
		t.Fatal(err)
	}
	return c, NewRunner(c)
}

func square(n int64) *Task {
	return &Task{Name: "square", Macros: []robot.Macro{
		{Motor: "x", Delta: n},
		{Motor: "y", Delta: n},
		{Motor: "x", Delta: -n},
		{Motor: "y", Delta: -n},
	}}
}

func TestRunTask(t *testing.T) {
	c, r := newRunner(t)
	if err := r.Run(square(5)); err != nil {
		t.Fatal(err)
	}
	if c.Motor("x").Position() != 0 || c.Motor("y").Position() != 0 {
		t.Errorf("pos = %d, %d", c.Motor("x").Position(), c.Motor("y").Position())
	}
	if len(c.Trace()) != 4 {
		t.Errorf("trace = %d commands", len(c.Trace()))
	}
	if !r.Running() == false {
		t.Error("Running after completion")
	}
}

func TestInterruptAbort(t *testing.T) {
	c, r := newRunner(t)
	s, err := c.AddSensor("touch", 1)
	if err != nil {
		t.Fatal(err)
	}
	task := square(3)
	// No OnEvent handler: default abort.
	s.Feed(5) // obstacle appears before the task starts its second macro
	err = r.Run(task)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
}

func TestInterruptContinue(t *testing.T) {
	c, r := newRunner(t)
	s, err := c.AddSensor("touch", 1)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	task := square(3)
	task.OnEvent = func(ev robot.SensorEvent) Decision {
		events++
		return Continue
	}
	s.Feed(5)
	if err := r.Run(task); err != nil {
		t.Fatal(err)
	}
	if events != 1 {
		t.Errorf("events = %d", events)
	}
	if len(c.Trace()) != 4 {
		t.Errorf("trace = %d", len(c.Trace()))
	}
}

func TestDirectMode(t *testing.T) {
	c, r := newRunner(t)
	if err := r.Direct(robot.Macro{Motor: "x", Delta: 7}); err != nil {
		t.Fatal(err)
	}
	if c.Motor("x").Position() != 7 {
		t.Errorf("pos = %d", c.Motor("x").Position())
	}
}

func TestDirectModeUnfreezes(t *testing.T) {
	c, r := newRunner(t)
	s, _ := c.AddSensor("touch", 1)
	s.Feed(5)
	if !c.Frozen() {
		t.Fatal("not frozen")
	}
	// A human in direct mode can recover a robot stuck in a dead end.
	if err := r.Direct(robot.Macro{Motor: "x", Delta: -3}); err != nil {
		t.Fatal(err)
	}
	if c.Motor("x").Position() != -3 {
		t.Errorf("pos = %d", c.Motor("x").Position())
	}
}

func TestOverrideReplacesTask(t *testing.T) {
	c, r := newRunner(t)
	long := &Task{Name: "long"}
	for i := 0; i < 50; i++ {
		long.Macros = append(long.Macros, robot.Macro{Motor: "x", Delta: 1})
	}
	// Trigger the override from within the task via a sensor-free trick: the
	// override is scheduled before Run, applied at the first macro boundary.
	if err := r.Run(&Task{Name: "starter", Macros: []robot.Macro{{Motor: "x", Delta: 1}}}); err != nil {
		t.Fatal(err)
	}
	// Override during execution: run in a goroutine-free way by injecting
	// before the second macro — schedule override while running is not
	// possible synchronously, so exercise the API contract instead.
	if err := r.Override(long); err == nil {
		t.Fatal("override with nothing running should fail")
	}
	_ = c
}

func TestOverrideMidTask(t *testing.T) {
	c, r := newRunner(t)
	s, _ := c.AddSensor("touch", 1)
	replacement := &Task{Name: "retreat", Macros: []robot.Macro{{Motor: "y", Delta: -5}}}
	task := square(2)
	task.OnEvent = func(robot.SensorEvent) Decision {
		// The handler overrides the current task instead of aborting.
		if err := r.Override(replacement); err != nil {
			t.Errorf("override: %v", err)
		}
		return Continue
	}
	s.Feed(5)
	if err := r.Run(task); err != nil {
		t.Fatal(err)
	}
	if c.Motor("y").Position() != -5 {
		t.Errorf("y = %d, want -5 (override executed)", c.Motor("y").Position())
	}
	hist := strings.Join(r.History(), ",")
	if hist != "square,override:retreat" {
		t.Errorf("history = %s", hist)
	}
}

func TestRunWhileRunning(t *testing.T) {
	_, r := newRunner(t)
	blocked := &Task{Name: "b", Macros: []robot.Macro{{Motor: "x", Delta: 1}}}
	// Direct is refused while a task runs; simulate by checking ErrBusy from
	// a task's own event handler.
	c2, r2 := newRunner(t)
	s, _ := c2.AddSensor("touch", 1)
	tsk := square(1)
	tsk.OnEvent = func(robot.SensorEvent) Decision {
		if err := r2.Direct(robot.Macro{Motor: "x", Delta: 1}); !errors.Is(err, ErrBusy) {
			t.Errorf("direct during task = %v", err)
		}
		if err := r2.Run(blocked); !errors.Is(err, ErrBusy) {
			t.Errorf("run during task = %v", err)
		}
		return Continue
	}
	s.Feed(5)
	if err := r2.Run(tsk); err != nil {
		t.Fatal(err)
	}
	_ = r
}
