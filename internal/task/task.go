// Package task is the robot application layer of Fig. 3a: small programs
// (tasks) defining an objective for the robot, broken into hardware macros
// sent to the device layer; sensor events interrupt tasks; a direct mode
// allows human control of the hardware; and an overriding layer replaces a
// running task without direct mode.
package task

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/robot"
)

// Decision is a task's response to a sensor interrupt.
type Decision uint8

// Interrupt decisions.
const (
	// Continue resumes the interrupted macro sequence.
	Continue Decision = iota + 1
	// Abort stops the current task.
	Abort
)

// Task is a basic program deciding what the robot does: a named sequence of
// hardware macros.
type Task struct {
	Name   string
	Macros []robot.Macro
	// OnEvent decides how to react to a sensor interrupt; nil aborts.
	OnEvent func(ev robot.SensorEvent) Decision
}

// Errors returned by the runner.
var (
	// ErrAborted is returned when a task was aborted by an interrupt
	// decision or an override.
	ErrAborted = errors.New("task: aborted")
	// ErrBusy is returned when direct mode is used while a task runs.
	ErrBusy = errors.New("task: hardware busy, task running")
)

// Runner executes tasks on one controller.
type Runner struct {
	ctrl *robot.Controller

	mu       sync.Mutex
	running  bool
	override *Task
	history  []string
}

// NewRunner returns a runner over ctrl.
func NewRunner(ctrl *robot.Controller) *Runner {
	return &Runner{ctrl: ctrl}
}

// Run executes t to completion, handling sensor interrupts through the
// task's OnEvent decision. Returns ErrAborted when interrupted fatally or
// overridden; an extension veto surfaces as the weaver's error.
func (r *Runner) Run(t *Task) error {
	r.mu.Lock()
	if r.running {
		r.mu.Unlock()
		return ErrBusy
	}
	r.running = true
	r.history = append(r.history, t.Name)
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.running = false
		r.mu.Unlock()
	}()

	for i := 0; i < len(t.Macros); i++ {
		// An overriding task replaces the rest of this one (§4.1's
		// overriding layer).
		r.mu.Lock()
		ov := r.override
		r.override = nil
		r.mu.Unlock()
		if ov != nil {
			r.mu.Lock()
			r.history = append(r.history, "override:"+ov.Name)
			r.mu.Unlock()
			t = ov
			i = -1 // restart loop over the override's macros
			continue
		}

		err := r.ctrl.Execute(t.Macros[i])
		if err == nil {
			continue
		}
		if !errors.Is(err, robot.ErrFrozen) {
			return fmt.Errorf("task %s macro %d: %w", t.Name, i, err)
		}
		// Sensor interrupt: collect the event and ask the task.
		var ev robot.SensorEvent
		select {
		case ev = <-r.ctrl.Events():
		default:
		}
		decision := Abort
		if t.OnEvent != nil {
			decision = t.OnEvent(ev)
		}
		r.ctrl.Resume()
		if decision == Abort {
			return fmt.Errorf("%w: task %s at macro %d (sensor %s)", ErrAborted, t.Name, i, ev.Sensor)
		}
		i-- // retry the interrupted macro
	}
	return nil
}

// Override schedules t to replace the currently running task at its next
// macro boundary. When no task is running it is an error (use Run).
func (r *Runner) Override(t *Task) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.running {
		return errors.New("task: nothing to override")
	}
	r.override = t
	return nil
}

// Direct executes a single macro in direct mode — the interface for direct
// human connection to the hardware. It refuses while a task is running.
func (r *Runner) Direct(m robot.Macro) error {
	r.mu.Lock()
	if r.running {
		r.mu.Unlock()
		return ErrBusy
	}
	r.mu.Unlock()
	if r.ctrl.Frozen() {
		r.ctrl.Resume()
	}
	return r.ctrl.Execute(m)
}

// Running reports whether a task is executing.
func (r *Runner) Running() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.running
}

// History lists executed task names (including "override:" entries).
func (r *Runner) History() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.history))
	copy(out, r.history)
	return out
}
