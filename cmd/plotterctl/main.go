// Command plotterctl is the client tooling of §4.5 (Fig. 6): it drives a
// plotter node's exported drawing service and queries/replays the movement
// history stored at a base station.
//
// Usage:
//
//	plotterctl -node 127.0.0.1:40001 -as artist draw "1,1 9,1 9,5 1,5 1,1"
//	plotterctl -node 127.0.0.1:40001 pen up|down
//	plotterctl -node 127.0.0.1:40001 pos
//	plotterctl -base 127.0.0.1:7000 query robot:1:1
//	plotterctl -base 127.0.0.1:7000 replay robot:1:1
//	plotterctl -base 127.0.0.1:7000 -scale 50 replay robot:1:1   # half-size reproduction
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/lvm"
	"repro/internal/plotter"
	"repro/internal/store"
	"repro/internal/svc"
	"repro/internal/transport"
	"repro/internal/weave"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		nodeAddr = flag.String("node", "", "plotter node service address")
		baseAddr = flag.String("base", "", "base station address")
		caller   = flag.String("as", "operator", "caller identity for service invocations")
		scale    = flag.Int64("scale", 100, "percentage applied to replayed movements (§4.5: amplify or reduce)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("need a subcommand: draw | pen | pos | query | replay")
	}

	tcp := transport.NewTCPCaller()
	defer tcp.Close()

	switch args[0] {
	case "draw":
		if *nodeAddr == "" || len(args) < 2 {
			return fmt.Errorf("draw needs -node and a point list \"x,y x,y ...\"")
		}
		points, err := parsePoints(args[1])
		if err != nil {
			return err
		}
		for i, p := range points {
			method := "moveTo"
			if i > 0 {
				method = "line"
			}
			if _, err := svc.Call(tcp, *nodeAddr, plotter.ServiceName, method, *caller, lvm.Int(p[0]), lvm.Int(p[1])); err != nil {
				return fmt.Errorf("%s(%d,%d): %w", method, p[0], p[1], err)
			}
		}
		fmt.Printf("drew %d segments\n", len(points)-1)
	case "pen":
		if *nodeAddr == "" || len(args) < 2 {
			return fmt.Errorf("pen needs -node and up|down")
		}
		method := map[string]string{"up": "penUp", "down": "penDown"}[args[1]]
		if method == "" {
			return fmt.Errorf("pen position must be up or down")
		}
		if _, err := svc.Call(tcp, *nodeAddr, plotter.ServiceName, method, *caller); err != nil {
			return err
		}
		fmt.Printf("pen %s\n", args[1])
	case "pos":
		if *nodeAddr == "" {
			return fmt.Errorf("pos needs -node")
		}
		v, err := svc.Call(tcp, *nodeAddr, plotter.ServiceName, "position", *caller)
		if err != nil {
			return err
		}
		fmt.Printf("pen at (%s)\n", v)
	case "query":
		recs, err := fetch(tcp, *baseAddr, args)
		if err != nil {
			return err
		}
		for _, r := range recs {
			fmt.Printf("%6d  %-12s %-10s %-12s %6d\n", r.Seq, r.Robot, r.Device, r.Action, r.Value)
		}
		fmt.Printf("%d records\n", len(recs))
	case "replay":
		recs, err := fetch(tcp, *baseAddr, args)
		if err != nil {
			return err
		}
		canvas := plotter.NewCanvas(40, 20)
		plot, err := plotter.New(weave.New(), canvas)
		if err != nil {
			return err
		}
		if *scale <= 0 {
			return fmt.Errorf("scale must be positive")
		}
		// Re-scale x/y movements, accumulating the fractional remainder per
		// device so sequences of unit steps scale correctly; the pen axis
		// keeps its direction.
		carry := make(map[string]int64)
		var cmds []plotter.ReplayCommand
		for _, r := range recs {
			v := r.Value
			if r.Action == "rotate" && r.Device != "motor:z" && r.Device != "Motor:z" {
				carry[r.Device] += r.Value * *scale
				v = carry[r.Device] / 100
				carry[r.Device] -= v * 100
			}
			cmds = append(cmds, plotter.ReplayCommand{Device: r.Device, Action: r.Action, Value: v})
		}
		if err := plot.Replay(cmds); err != nil {
			return err
		}
		fmt.Printf("replayed %d movements:\n%s", len(cmds), canvas.Render())
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
	return nil
}

func fetch(tcp transport.Caller, baseAddr string, args []string) ([]store.Record, error) {
	if baseAddr == "" {
		return nil, fmt.Errorf("%s needs -base", args[0])
	}
	filter := store.Filter{}
	if len(args) > 1 {
		filter.Robot = args[1]
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := transport.Invoke[core.QueryReq, core.QueryResp](ctx, tcp, baseAddr, core.MethodBaseQuery, core.QueryReq{Filter: filter})
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

func parsePoints(src string) ([][2]int64, error) {
	var out [][2]int64
	for _, part := range strings.Fields(src) {
		xs, ys, ok := strings.Cut(part, ",")
		if !ok {
			return nil, fmt.Errorf("bad point %q (want x,y)", part)
		}
		x, err1 := strconv.ParseInt(xs, 10, 64)
		y, err2 := strconv.ParseInt(ys, 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad point %q", part)
		}
		out = append(out, [2]int64{x, y})
	}
	if len(out) < 1 {
		return nil, fmt.Errorf("no points given")
	}
	return out, nil
}
