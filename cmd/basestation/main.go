// Command basestation runs a MIDAS extension base with an embedded lookup
// service and movement database over TCP. Mobile nodes (cmd/node) register
// their adaptation services at the lookup endpoint; the base adapts them with
// the configured extension set and keeps the leases alive.
//
// Usage:
//
//	basestation -addr 127.0.0.1:7000 -store movements.log -keyfile base.pub \
//	    -state-dir /var/lib/midas/base -ext hwmonitor -ext 'accesscontrol:allow=operator'
//
// The signing public key is written to -keyfile; nodes pass it via -trustkey.
// With -state-dir, adapted nodes and lease grants are journalled and a
// restarted base resumes its renewals instead of starting blank; -reconcile
// sets the anti-entropy period and -breaker-threshold/-breaker-cooldown tune
// the per-node circuit breaker. With -admission, extensions must pass the
// static capability analysis against the given allowlist (e.g.
// -admission store,clock) before they join the policy set; -admission-flows
// additionally restricts the information flows their bytecode may exercise
// (e.g. -admission-flows store->net) — flows the bytecode exercises but the
// descriptor does not declare are refused regardless.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ext"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/registry"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"
)

type extFlags []string

func (e *extFlags) String() string { return strings.Join(*e, ",") }
func (e *extFlags) Set(v string) error {
	*e = append(*e, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7000", "TCP listen address (lookup + base)")
		name      = flag.String("name", "hall-1", "environment name and signer identity")
		storePath = flag.String("store", "", "movement database journal (empty = in-memory)")
		keyFile   = flag.String("keyfile", "", "write the signing public key (hex) to this file")
		leaseDur  = flag.Duration("lease", 10*time.Second, "extension lease duration")
		httpAddr  = flag.String("http", "127.0.0.1:8001", "metrics/health HTTP address (empty disables)")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the -http listener")
		stateDir  = flag.String("state-dir", "", "directory for the durable lifecycle journal (empty = no crash recovery)")
		reconcile = flag.Duration("reconcile", 30*time.Second, "anti-entropy reconciliation period (0 disables)")
		brkThresh = flag.Int("breaker-threshold", 3, "consecutive failures before a node's circuit opens")
		brkCool   = flag.Duration("breaker-cooldown", 5*time.Second, "circuit open time before a half-open probe")
		admission = flag.String("admission", "", "comma-separated capability allowlist enforced at admission (empty = declared caps only)")
		admFlows  = flag.String("admission-flows", "", "comma-separated information-flow allowlist, e.g. store->net,session->log (empty = any declared flow; undeclared flows are always refused)")
		shards    = flag.Int("shards", 16, "node-table shards (parallel adapt/reconcile lock domains)")
		renewBat  = flag.Int("renew-batch", 64, "max leases coalesced into one batched renewal RPC per node")
		renewTick = flag.Duration("renew-tick", 0, "renewal timer-wheel granularity (0 = lease*fraction/4)")
		renewWrk  = flag.Int("renew-workers", 8, "concurrent renewal RPC workers")
		wireOn    = flag.Bool("wire", true, "negotiate the binary wire codec with peers (false = gob only, for mixed fleets)")
		ovlOn     = flag.Bool("overload", true, "enable the overload control plane (adaptive concurrency limit, priority shedding)")
		ovlInit   = flag.Int("overload-initial", 16, "starting concurrency limit")
		ovlMin    = flag.Int("overload-min", 4, "concurrency limit floor under sustained saturation")
		ovlMax    = flag.Int("overload-max", 256, "concurrency limit ceiling")
		ovlQueue  = flag.Int("overload-queue", 128, "bounded wait-queue depth per priority class")
		ovlTarget = flag.Duration("overload-target", 5*time.Millisecond, "queue-delay target; sustained waits above it halve the limit")
		ovlEvery  = flag.Duration("overload-interval", 100*time.Millisecond, "limit adaptation interval")
		ovlRetry  = flag.Duration("overload-retry-after", 250*time.Millisecond, "retry-after hint attached to shed responses")
		ovlPRate  = flag.Float64("overload-peer-rate", 50, "per-peer token refill rate (calls/s) on governed methods (0 disables)")
		ovlPBurst = flag.Float64("overload-peer-burst", 100, "per-peer token bucket capacity")
		smpRate   = flag.Float64("trace-sample", 1, "head-sampling rate for new traces, 0..1 (1 = record everything)")
		smpSlow   = flag.Duration("trace-slow", 100*time.Millisecond, "tail-keep threshold: sampled-out spans at least this slow are retained anyway")
		exts      extFlags
	)
	flag.Var(&exts, "ext", "extension preset, repeatable: hwmonitor | logger | accesscontrol:allow=a,b")
	flag.Parse()

	seed := clock.Real{}.Now().UnixNano()
	tracer := trace.New(seed)
	if *smpRate < 1 {
		tracer.SetSampler(trace.SamplerConfig{Rate: *smpRate, Seed: seed, SlowThreshold: *smpSlow})
	}

	signer, err := sign.NewSigner(*name)
	if err != nil {
		return err
	}
	if *keyFile != "" {
		if err := os.WriteFile(*keyFile, []byte(hex.EncodeToString(signer.PublicKey())+"\n"), 0o644); err != nil {
			return err
		}
	}

	var db *store.Store
	if *storePath != "" {
		db, err = store.Open(*storePath)
		if err != nil {
			return err
		}
		defer db.Close()
	} else {
		db = store.NewMemory()
	}

	mux := transport.NewMux()
	caller := transport.NewTCPCaller()
	defer caller.Close()
	if !*wireOn {
		caller.DisableWire()
		mux.SetGobOnly(true)
	}

	lookup := registry.NewLookup(clock.Real{})
	lookup.Grantor().Start(time.Second)
	defer lookup.Grantor().Stop()
	lookupSrv := registry.NewServer(*name+"/lookup", lookup, mux, caller, clock.Real{})
	defer lookupSrv.Close()

	var journal *core.BaseJournal
	if *stateDir != "" {
		journal, err = core.OpenBaseJournal(*stateDir)
		if err != nil {
			return err
		}
		defer journal.Close()
	}
	breaker := transport.NewBreakerSet(clock.Real{}.Now().UnixNano(), transport.BreakerConfig{
		Threshold: *brkThresh,
		Cooldown:  *brkCool,
	})

	var admissionPolicy sandbox.Policy
	if *admission != "" {
		var caps []sandbox.Capability
		for _, c := range strings.Split(*admission, ",") {
			if c = strings.TrimSpace(c); c != "" {
				caps = append(caps, sandbox.Capability(c))
			}
		}
		admissionPolicy = sandbox.Allowlist(caps...)
	}
	var flowAllow []string
	if *admFlows != "" {
		for _, f := range strings.Split(*admFlows, ",") {
			if f = strings.TrimSpace(f); f != "" {
				flowAllow = append(flowAllow, f)
			}
		}
	}

	base, err := core.NewBase(core.BaseConfig{
		Name:           *name,
		Addr:           *addr,
		Caller:         caller,
		Signer:         signer,
		Store:          db,
		LeaseDur:       *leaseDur,
		Journal:        journal,
		Breaker:        breaker,
		ReconcileEvery: *reconcile,
		Admission:      admissionPolicy,
		AdmissionFlows: flowAllow,
		Shards:         *shards,
		RenewTick:      *renewTick,
		RenewBatch:     *renewBat,
		RenewWorkers:   *renewWrk,
	})
	if err != nil {
		return err
	}
	defer base.Close()
	base.OnDepart(func(node string) { log.Printf("node departed: %s", node) })
	base.Trace(tracer)
	base.ServeOn(mux)
	lookup.Grantor().Trace(tracer)

	reg := metrics.New()
	lookup.Instrument(reg)
	caller.Instrument(reg)
	base.Instrument(reg)
	transport.Register(mux, core.MethodMetrics, func(_ context.Context, _ core.EmptyResp) (core.MetricsResp, error) {
		return core.MetricsResp{Snap: reg.Snapshot()}, nil
	})
	transport.Register(mux, core.MethodTrace, func(_ context.Context, req core.TraceReq) (core.TraceResp, error) {
		return core.CollectTrace(tracer, req), nil
	})

	for i, spec := range exts {
		e, err := presetExtension(*name, i, spec)
		if err != nil {
			return err
		}
		if err := base.AddExtension(e); err != nil {
			return err
		}
		log.Printf("extension in policy set: %s", e.Name)
	}

	if journal != nil {
		restored, err := base.Recover()
		if err != nil {
			return fmt.Errorf("recover from %s: %w", *stateDir, err)
		}
		if restored > 0 {
			log.Printf("recovered %d node(s) from the state journal; renewals resumed", restored)
		}
	}

	serveTCP := transport.ServeTCP
	if !*wireOn {
		serveTCP = transport.ServeTCPLegacy
	}
	// The overload front sits innermost — after tracing has opened the server
	// span, so sheds are visible in traces, but before any handler runs.
	var handler transport.Handler = mux
	var ovl *overload.Handler
	if *ovlOn {
		lim := overload.NewLimiter(overload.Config{
			InitialLimit: *ovlInit,
			MinLimit:     *ovlMin,
			MaxLimit:     *ovlMax,
			QueueDepth:   *ovlQueue,
			Target:       *ovlTarget,
			Interval:     *ovlEvery,
			RetryAfter:   *ovlRetry,
		})
		lim.Instrument(reg)
		var buckets *overload.Buckets
		if *ovlPRate > 0 {
			buckets = overload.NewBuckets(overload.BucketConfig{
				Rate:  *ovlPRate,
				Burst: *ovlPBurst,
				Methods: []string{
					core.MethodBasePost, core.MethodBaseOnService,
					core.MethodBaseRoam, registry.MethodFind,
				},
				RetryAfter: *ovlRetry,
			})
			buckets.Instrument(reg)
		}
		ovl = overload.Wrap(mux, lim, buckets, tracer)
		handler = ovl
		base.SetOverload(ovl.Snapshot)
	}
	srv, err := serveTCP(*addr, transport.REDHandling(transport.TraceHandling(handler, tracer, *name), reg))
	if err != nil {
		return err
	}
	defer srv.Close()
	srv.Instrument(reg)
	log.Printf("base station %s serving on %s (signer %s)", *name, srv.Addr(), signer.Fingerprint())

	if *httpAddr != "" {
		health := metrics.NewHealth()
		health.Register("transport", func() error {
			conn, err := net.DialTimeout("tcp", srv.Addr(), 500*time.Millisecond)
			if err != nil {
				return err
			}
			return conn.Close()
		})
		health.Register("nodes", func() error {
			if d := base.Degraded(); len(d) > 0 {
				return fmt.Errorf("%d node(s) degraded: %s", len(d), strings.Join(d, ", "))
			}
			return nil
		})
		health.RegisterValue("base.degraded_nodes", func() int64 { return int64(len(base.Degraded())) })
		health.RegisterValue("base.renewal_backlog", func() int64 { return int64(base.RenewalBacklog()) })
		health.RegisterValue("trace.spans_dropped", func() int64 { return int64(tracer.SpansDropped()) })
		if ovl != nil {
			health.RegisterValue("overload.limit", func() int64 { return int64(ovl.Snapshot().Limit) })
			health.RegisterValue("overload.queued", func() int64 { return int64(ovl.Snapshot().Queued) })
			health.RegisterValue("overload.sheds", func() int64 { return int64(ovl.Snapshot().Sheds()) })
			health.RegisterValue("overload.expired_drops", func() int64 { return int64(ovl.Snapshot().ExpiredDrops) })
		}
		mounts := []metrics.Mount{
			{Pattern: "/trace", Handler: trace.Handler(tracer)},
			{Pattern: "/events", Handler: trace.EventsHandler(tracer)},
			{Pattern: "/fleet", Handler: core.FleetHandler(base)},
		}
		if *pprofOn {
			mounts = append(mounts, metrics.PprofMounts()...)
		}
		maddr, stopHTTP, err := metrics.ServeHTTP(*httpAddr, reg, health, mounts...)
		if err != nil {
			return err
		}
		defer stopHTTP()
		log.Printf("metrics on http://%s/metrics, traces on http://%s/trace, fleet view on http://%s/fleet", maddr, maddr, maddr)
		if *pprofOn {
			log.Printf("pprof on http://%s/debug/pprof/", maddr)
		}
	}

	if _, err := base.WatchLookup(&registry.Client{Caller: caller, Addr: srv.Addr()}, 24*time.Hour); err != nil {
		return err
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	<-sigCh
	log.Printf("shutting down; activity log:")
	for _, a := range base.Activity() {
		log.Printf("  %d %-10s node=%s ext=%s %s", a.AtMillis, a.Event, a.Node, a.Ext, a.Detail)
	}
	return nil
}

// presetExtension parses "name" or "name:key=val,key=val" extension specs.
func presetExtension(hall string, idx int, spec string) (core.Extension, error) {
	kind, cfgSrc, _ := strings.Cut(spec, ":")
	cfg := make(map[string]string)
	if cfgSrc != "" {
		for _, kv := range strings.Split(cfgSrc, ";") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return core.Extension{}, fmt.Errorf("bad config %q in -ext %q", kv, spec)
			}
			cfg[k] = v
		}
	}
	e := core.Extension{
		ID:      fmt.Sprintf("%s/%s-%d", hall, kind, idx),
		Name:    kind,
		Version: 1,
	}
	switch kind {
	case ext.BMonitor:
		if cfg["mode"] == "" {
			cfg["mode"] = "sync"
		}
		e.Advices = []core.AdviceSpec{{
			Name: "monitor", Kind: core.KindCallBefore, Pattern: "Motor.*(..)",
			Builtin: ext.BMonitor, Config: cfg,
		}}
		e.Caps = []string{"net", "clock"}
	case ext.BLogger:
		e.Advices = []core.AdviceSpec{{
			Name: "log", Kind: core.KindCallBefore, Pattern: "*.*(..)",
			Builtin: ext.BLogger, Config: cfg,
		}}
		e.Caps = []string{"log"}
	case ext.BAccessControl:
		e.Advices = []core.AdviceSpec{{
			Name: "authorize", Kind: core.KindCallBefore, Pattern: "*.*(..)",
			Builtin: ext.BAccessControl, Config: cfg,
		}}
		e.Requires = []string{ext.SessionBundleName}
		e.Caps = []string{"session"}
	default:
		return core.Extension{}, fmt.Errorf("unknown extension preset %q", kind)
	}
	return e, nil
}
