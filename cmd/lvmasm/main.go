// Command lvmasm is the LVM toolchain front end: it assembles, verifies,
// disassembles and runs LVM programs — handy when authoring mobile extension
// advice or robot application code.
//
// Usage:
//
//	lvmasm check app.lvm                  # assemble + verify
//	lvmasm dis app.lvm                    # assemble, then disassemble (round trip)
//	lvmasm run app.lvm Class.method 1 2   # run a method with int args
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/jit"
	"repro/internal/lvm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	steps := flag.Int64("steps", lvm.DefaultMaxSteps, "execution step budget")
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		return fmt.Errorf("usage: lvmasm <check|dis|run> <file.lvm> [Class.method args...]")
	}
	src, err := os.ReadFile(args[1])
	if err != nil {
		return err
	}
	prog, err := lvm.Assemble(string(src))
	if err != nil {
		return err
	}
	if err := lvm.VerifyProgram(prog); err != nil {
		return err
	}

	switch args[0] {
	case "check":
		methods := 0
		prog.EachMethod(func(*lvm.Method) { methods++ })
		fmt.Printf("ok: %d classes, %d methods, verification passed\n", len(prog.Classes), methods)
	case "dis":
		fmt.Print(lvm.Disassemble(prog))
	case "run":
		if len(args) < 3 {
			return fmt.Errorf("run needs Class.method")
		}
		cls, method, ok := strings.Cut(args[2], ".")
		if !ok {
			return fmt.Errorf("want Class.method, got %q", args[2])
		}
		if prog.Method(cls, method) == nil {
			return fmt.Errorf("no method %s.%s", cls, method)
		}
		var callArgs []lvm.Value
		for _, a := range args[3:] {
			if i, err := strconv.ParseInt(a, 10, 64); err == nil {
				callArgs = append(callArgs, lvm.Int(i))
			} else {
				callArgs = append(callArgs, lvm.Str(a))
			}
		}
		m := jit.NewMachine(prog, nil, hostEnv())
		m.MaxSteps = *steps
		v, err := m.Call(cls, method, nil, callArgs...)
		if err != nil {
			return err
		}
		fmt.Printf("=> %s (%s)\n", v, v.K)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
	return nil
}

// hostEnv provides a minimal host for standalone runs: log and clock only.
func hostEnv() lvm.HostMap {
	return lvm.HostMap{
		"log.info": func(args []lvm.Value) (lvm.Value, error) {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = a.String()
			}
			fmt.Fprintln(os.Stderr, strings.Join(parts, " "))
			return lvm.Nil(), nil
		},
	}
}
