// Command prosevet runs the LVM static admission analyses — typed
// verification, capability inference, information-flow (taint) analysis and
// cost bounding — over assembled mobile-code files, the same pipeline
// core.Base applies before signing an extension. It prints, per method, the
// inferred capability set, the host functions reachable from it and the
// static fuel verdict, and exits nonzero if any file is rejected.
//
// Usage:
//
//	prosevet [-q] [-flows] file.lasm [file.lasm ...]
//	prosevet examples/advice/*.lasm
//
// Flags:
//
//	-q      only report rejections and warnings, not per-method detail
//	-flows  also print each method's source->sink flows with witness pc chains
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/lvm"
	"repro/internal/lvm/analysis"
)

func main() {
	quiet := flag.Bool("q", false, "only report rejections and warnings")
	flows := flag.Bool("flows", false, "print source->sink flows with witness pc chains")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: prosevet [-q] [-flows] file.lasm ...")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		if err := vetFile(os.Stdout, path, *quiet, *flows); err != nil {
			fmt.Fprintf(os.Stderr, "prosevet: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func vetFile(w *os.File, path string, quiet, showFlows bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := lvm.Assemble(string(src))
	if err != nil {
		return err
	}
	rep, err := analysis.AnalyzeProgram(prog)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(w, "%s:\n", path)
		names := make([]string, 0, len(rep.Methods))
		for name := range rep.Methods {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m := rep.Methods[name]
			fuel := "unbounded"
			if m.Fuel.Bounded {
				fuel = fmt.Sprintf("<= %d steps", m.Fuel.Steps)
			}
			caps := "none"
			if len(m.Caps) > 0 {
				parts := make([]string, len(m.Caps))
				for i, c := range m.Caps {
					parts[i] = string(c)
				}
				caps = strings.Join(parts, ", ")
			}
			extra := ""
			if rules := analysis.FlowRules(m.Flows); len(rules) > 0 {
				extra = fmt.Sprintf("  flows {%s}", strings.Join(rules, ", "))
			}
			fmt.Fprintf(w, "  %s: caps {%s}  fuel %s%s\n", name, caps, fuel, extra)
			for _, fn := range m.HostCalls {
				fmt.Fprintf(w, "    hostcall %s\n", fn)
			}
			if showFlows {
				for _, f := range m.Flows {
					fmt.Fprintf(w, "    flow %s\n", f)
				}
			}
		}
	}
	for _, warn := range rep.Warnings {
		fmt.Fprintf(w, "%s: warning: %s\n", path, warn)
	}
	return nil
}
