// Command prosevet-go runs the platform's custom Go vet suite — clockcheck,
// ctxtwin, nilsafe, lockorder, spanend and wirecover (see internal/lint) —
// over a source tree. It needs no
// module downloads or go/packages driver: files are parsed directly, so it
// works in hermetic CI.
//
// Usage:
//
//	prosevet-go [dir]          # default: .
//	prosevet-go -only clockcheck internal/core
//
// Exits 1 when any diagnostic is reported. Waive a finding with a
// `//lint:allow <analyzer>` comment on (or directly above) the flagged line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()
	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	// "./..." is accepted for familiarity; the walker always recurses.
	root = strings.TrimSuffix(root, "...")
	if root != "." {
		root = strings.TrimSuffix(root, "/")
	}
	if root == "" {
		root = "."
	}

	all := []*lint.Analyzer{lint.ClockCheck, lint.CtxTwin, lint.NilSafe, lint.LockOrder, lint.SpanEnd, lint.WireCover}
	analyzers := all
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "prosevet-go: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	fset, pkgs, err := lint.Load(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prosevet-go: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(fset, pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
