// Command node runs a mobile plotter node: the plotter application, its
// exported drawing service and the MIDAS adaptation service, all over TCP.
// On startup it registers at a base station's lookup service; the base then
// adapts it with the hall's extensions. Ctrl-C simulates leaving the hall
// (the registration and extension leases lapse).
//
// Usage:
//
//	node -name plotter-1 -addr 127.0.0.1:0 -lookup 127.0.0.1:7000 -trustkey base.pub
//
// With -state-dir the node journals its installed extensions and lease
// deadlines, and a restart re-weaves whatever leases are still live (anything
// that lapsed while the node was down is withdrawn immediately on replay).
//
// Pass -faults (with an optional -seed) to inject reproducible loss, latency
// and duplication into the node's outbound calls, e.g.
//
//	node ... -faults loss=0.1,dup=0.05,latmax=50ms -seed 42
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ext"
	"repro/internal/metrics"
	"repro/internal/plotter"
	"repro/internal/registry"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/svc"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/weave"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		name     = flag.String("name", "plotter-1", "node name")
		addr     = flag.String("addr", "127.0.0.1:0", "TCP listen address")
		lookup   = flag.String("lookup", "127.0.0.1:7000", "lookup service address")
		trustKey = flag.String("trustkey", "", "file with a trusted signer public key (hex)")
		kvPath   = flag.String("kv", "", "node KV journal for persistence extensions (empty = in-memory)")
		stateDir = flag.String("state-dir", "", "directory for the durable adaptation journal (empty = no crash recovery)")
		httpAddr = flag.String("http", "127.0.0.1:8101", "metrics/health HTTP address (empty disables)")
		faults   = flag.String("faults", "", "inject outbound faults, e.g. loss=0.1,dup=0.05,latmax=50ms (empty disables)")
		seed     = flag.Int64("seed", 1, "fault-injection RNG seed (used with -faults)")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the -http listener")
		wireOn   = flag.Bool("wire", true, "negotiate the binary wire codec with peers (false = gob only, for mixed fleets)")
		smpRate  = flag.Float64("trace-sample", 1, "head-sampling rate for new traces, 0..1 (1 = record everything)")
		smpSlow  = flag.Duration("trace-slow", 100*time.Millisecond, "tail-keep threshold: sampled-out spans at least this slow are retained anyway")
	)
	flag.Parse()

	tseed := clock.Real{}.Now().UnixNano()
	tracer := trace.New(tseed)
	if *smpRate < 1 {
		tracer.SetSampler(trace.SamplerConfig{Rate: *smpRate, Seed: tseed, SlowThreshold: *smpSlow})
	}
	reg := metrics.New()

	weaver := weave.New()
	canvas := plotter.NewCanvas(40, 20)
	plot, err := plotter.New(weaver, canvas)
	if err != nil {
		return err
	}
	services := svc.NewRegistry(weaver)
	plot.RegisterService(services)

	trust := sign.NewTrustStore()
	if *trustKey != "" {
		raw, err := os.ReadFile(*trustKey)
		if err != nil {
			return err
		}
		key, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil {
			return fmt.Errorf("bad trust key: %w", err)
		}
		trust.Trust("base", key)
		log.Printf("trusting signer %s", sign.Fingerprint(key))
	} else {
		log.Printf("warning: no -trustkey; all extensions will be rejected")
	}

	var kv *store.KV
	if *kvPath != "" {
		kv, err = store.OpenKV(*kvPath)
		if err != nil {
			return err
		}
		defer kv.Close()
	} else {
		kv = store.NewKV()
	}

	tcp := transport.NewTCPCaller()
	defer tcp.Close()
	if !*wireOn {
		tcp.DisableWire()
	}
	var caller transport.Caller = tcp
	var chaos *simnet.Chaos
	if *faults != "" {
		prof, err := simnet.ParseFaults(*faults)
		if err != nil {
			return err
		}
		chaos = simnet.NewChaos(tcp, *seed, prof)
		caller = chaos
		log.Printf("chaos: injecting %s on outbound calls (seed %d)", *faults, *seed)
	}
	caller = transport.REDCalls(transport.TraceCalls(caller, tracer), reg)
	builtins := core.NewBuiltins()
	ext.RegisterAll(builtins)
	host := ext.NewNodeHost(ext.NodeHostConfig{
		Caller: caller,
		KV:     kv,
		Clock:  clock.Real{},
		Log:    func(s string) { log.Printf("[ext] %s", s) },
	})

	mux := transport.NewMux()
	services.ServeOn(mux)
	serveTCP := transport.ServeTCP
	if !*wireOn {
		mux.SetGobOnly(true)
		serveTCP = transport.ServeTCPLegacy
	}
	srv, err := serveTCP(*addr, transport.REDHandling(transport.TraceHandling(mux, tracer, *name), reg))
	if err != nil {
		return err
	}
	defer srv.Close()

	var journal *core.ReceiverJournal
	if *stateDir != "" {
		journal, err = core.OpenReceiverJournal(*stateDir)
		if err != nil {
			return err
		}
		defer journal.Close()
	}

	receiver, err := core.NewReceiver(core.ReceiverConfig{
		NodeName: *name,
		Addr:     srv.Addr(),
		Weaver:   weaver,
		Trust:    trust,
		Policy:   sandbox.AllowAll(),
		Host:     host,
		Builtins: builtins,
		Extras:   map[string]any{ext.ExtraTxnManager: txn.NewManager(kv)},
		Journal:  journal,
	})
	if err != nil {
		return err
	}
	weaver.Instrument(reg)
	tcp.Instrument(reg)
	if chaos != nil {
		chaos.Instrument(reg)
	}
	srv.Instrument(reg)
	receiver.Instrument(reg)
	receiver.Trace(tracer)

	receiver.ServeOn(mux)
	receiver.Grantor().Start(time.Second)
	defer receiver.Grantor().Stop()

	if journal != nil {
		// A damaged journal must not keep the node down: start empty and
		// let the base's reconciliation re-push what belongs here.
		restored, err := receiver.Recover()
		if err != nil {
			log.Printf("warning: recover from %s: %v (starting empty)", *stateDir, err)
		} else if restored > 0 {
			log.Printf("recovered %d extension(s) from the state journal", restored)
		}
	}

	log.Printf("node %s serving on %s", *name, srv.Addr())

	if *httpAddr != "" {
		health := metrics.NewHealth()
		health.Register("transport", func() error {
			conn, err := net.DialTimeout("tcp", srv.Addr(), 500*time.Millisecond)
			if err != nil {
				return err
			}
			return conn.Close()
		})
		health.RegisterValue("trace.spans_dropped", func() int64 { return int64(tracer.SpansDropped()) })
		health.RegisterValue("trace.tail_kept", func() int64 {
			_, kept := tracer.SamplerStats()
			return int64(kept)
		})
		mounts := []metrics.Mount{
			{Pattern: "/trace", Handler: trace.Handler(tracer)},
			{Pattern: "/events", Handler: trace.EventsHandler(tracer)},
		}
		if *pprofOn {
			mounts = append(mounts, metrics.PprofMounts()...)
		}
		maddr, stopHTTP, err := metrics.ServeHTTP(*httpAddr, reg, health, mounts...)
		if err != nil {
			return err
		}
		defer stopHTTP()
		log.Printf("metrics on http://%s/metrics, traces on http://%s/trace", maddr, maddr)
		if *pprofOn {
			log.Printf("pprof on http://%s/debug/pprof/", maddr)
		}
	}

	client := &registry.Client{Caller: caller, Addr: *lookup}
	stopAdv, err := receiver.Advertise(client, 30*time.Second, map[string]string{"kind": "plotter"})
	if err != nil {
		return fmt.Errorf("advertise at %s: %w", *lookup, err)
	}
	defer stopAdv()
	log.Printf("advertised adaptation service at lookup %s", *lookup)

	statusClock := clock.Real{}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-statusClock.After(5 * time.Second):
			var names []string
			for _, i := range receiver.Installed() {
				names = append(names, fmt.Sprintf("%s@v%d", i.Name, i.Version))
			}
			x, y := plot.Position()
			log.Printf("pen at (%d,%d), %d cells inked, extensions: %v", x, y, canvas.Count(), names)
		case <-sigCh:
			log.Printf("leaving the hall; final canvas:\n%s", canvas.Render())
			return nil
		}
	}
}
