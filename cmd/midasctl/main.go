// Command midasctl inspects and manages a running MIDAS node or base
// station over TCP: list installed extensions, revoke one, query the lookup
// service, or dump a base's movement database.
//
// Usage:
//
//	midasctl -node 127.0.0.1:7101 list
//	midasctl -node 127.0.0.1:7101 revoke hw-monitoring
//	midasctl -node 127.0.0.1:7101 metrics
//	midasctl -node 127.0.0.1:7101 trace [ext|node|traceID]
//	midasctl -lookup 127.0.0.1:7000 services
//	midasctl -base 127.0.0.1:7000 records [robot]
//	midasctl -base 127.0.0.1:7000 status
//	midasctl -base 127.0.0.1:7000 analyze <extension>
//	midasctl -base 127.0.0.1:7000 top
//
// The metrics and top subcommands accept -watch <interval> to poll and
// re-render in place (Ctrl-C exits); top shows the base's merged fleet
// observability view, slowest methods first.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		nodeAddr   = flag.String("node", "", "adaptation service address")
		lookupAddr = flag.String("lookup", "", "lookup service address")
		baseAddr   = flag.String("base", "", "base station address")
		watch      = flag.Duration("watch", 0, "poll and re-render every interval (metrics and top; 0 = print once)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("need a subcommand: list | revoke <name> | metrics | trace [query] | services | records [robot] | status | analyze <name> | top")
	}

	caller := transport.NewTCPCaller()
	defer caller.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	switch args[0] {
	case "list":
		if *nodeAddr == "" {
			return fmt.Errorf("list needs -node")
		}
		resp, err := transport.Invoke[core.EmptyResp, core.ListResp](ctx, caller, *nodeAddr, core.MethodList, core.EmptyResp{})
		if err != nil {
			return err
		}
		if len(resp.Extensions) == 0 {
			fmt.Println("no extensions installed")
			return nil
		}
		for _, e := range resp.Extensions {
			tag := ""
			if e.System {
				tag = " (implicit)"
			}
			fmt.Printf("%-24s v%-3d from %s%s\n", e.Name, e.Version, e.BaseAddr, tag)
		}
	case "revoke":
		if *nodeAddr == "" || len(args) < 2 {
			return fmt.Errorf("revoke needs -node and an extension name")
		}
		if _, err := transport.Invoke[core.RevokeReq, core.EmptyResp](ctx, caller, *nodeAddr, core.MethodRevoke, core.RevokeReq{Name: args[1]}); err != nil {
			return err
		}
		fmt.Printf("revoked %s\n", args[1])
	case "metrics":
		target := *nodeAddr
		if target == "" {
			target = *baseAddr
		}
		if target == "" {
			return fmt.Errorf("metrics needs -node or -base")
		}
		return watchLoop(*watch, func(ctx context.Context) error {
			resp, err := transport.Invoke[core.EmptyResp, core.MetricsResp](ctx, caller, target, core.MethodMetrics, core.EmptyResp{})
			if err != nil {
				return err
			}
			metrics.WriteText(os.Stdout, resp.Snap)
			return nil
		})
	case "top":
		if *baseAddr == "" {
			return fmt.Errorf("top needs -base")
		}
		return watchLoop(*watch, func(ctx context.Context) error {
			resp, err := transport.Invoke[core.EmptyResp, core.FleetResp](ctx, caller, *baseAddr, core.MethodBaseFleet, core.EmptyResp{})
			if err != nil {
				return err
			}
			writeFleet(os.Stdout, resp)
			return nil
		})
	case "trace":
		target := *nodeAddr
		if target == "" {
			target = *baseAddr
		}
		if target == "" {
			return fmt.Errorf("trace needs -node or -base")
		}
		query := ""
		if len(args) > 1 {
			query = args[1]
		}
		resp, err := transport.Invoke[core.TraceReq, core.TraceResp](ctx, caller, target, core.MethodTrace, core.TraceReq{Query: query})
		if err != nil {
			return err
		}
		if len(resp.Spans) == 0 {
			fmt.Println("no matching spans")
		} else {
			trace.WriteText(os.Stdout, resp.Spans)
		}
		if len(resp.Events) > 0 {
			fmt.Println()
			trace.WriteEventsText(os.Stdout, resp.Events)
		}
	case "services":
		if *lookupAddr == "" {
			return fmt.Errorf("services needs -lookup")
		}
		client := &registry.Client{Caller: caller, Addr: *lookupAddr}
		items, err := client.Find(registry.Template{})
		if err != nil {
			return err
		}
		for _, it := range items {
			fmt.Printf("%-16s %-20s at %s %v\n", it.ID, it.Name, it.Addr, it.Attrs)
		}
		fmt.Printf("%d services\n", len(items))
	case "records":
		if *baseAddr == "" {
			return fmt.Errorf("records needs -base")
		}
		filter := store.Filter{}
		if len(args) > 1 {
			filter.Robot = args[1]
		}
		resp, err := transport.Invoke[core.QueryReq, core.QueryResp](ctx, caller, *baseAddr, core.MethodBaseQuery, core.QueryReq{Filter: filter})
		if err != nil {
			return err
		}
		for _, r := range resp.Records {
			fmt.Printf("%6d  %-14s %-10s %-12s %6d  at %d\n", r.Seq, r.Robot, r.Device, r.Action, r.Value, r.AtMillis)
		}
		fmt.Printf("%d records\n", len(resp.Records))
	case "analyze":
		if *baseAddr == "" || len(args) < 2 {
			return fmt.Errorf("analyze needs -base and an extension name")
		}
		resp, err := transport.Invoke[core.AnalyzeReq, core.AnalyzeResp](ctx, caller, *baseAddr,
			core.MethodBaseAnalyze, core.AnalyzeReq{Ext: args[1]})
		if err != nil {
			return err
		}
		writeAnalysis(os.Stdout, resp.Report)
	case "status":
		if *baseAddr == "" {
			return fmt.Errorf("status needs -base")
		}
		resp, err := transport.Invoke[core.EmptyResp, core.BaseStatusResp](ctx, caller, *baseAddr, core.MethodBaseStatus, core.EmptyResp{})
		if err != nil {
			return err
		}
		writeStatus(os.Stdout, resp)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
	return nil
}

// watchLoop renders once, or — with a positive interval — clears the screen
// and re-renders every interval until interrupted or a poll fails. Each round
// gets its own timeout so a stalled peer cannot wedge the loop forever.
func watchLoop(interval time.Duration, render func(ctx context.Context) error) error {
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if interval > 0 {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear, like watch(1)
		}
		err := render(ctx)
		cancel()
		if err != nil || interval <= 0 {
			return err
		}
		<-clock.Real{}.After(interval)
	}
}

// writeFleet renders the base's merged fleet observability view: the rollup
// sorted slowest-method first, then the busiest nodes with their trace-drop
// counters, plus whatever the base currently considers degraded.
func writeFleet(w io.Writer, resp core.FleetResp) {
	fmt.Fprintf(w, "fleet: %d report(s) merged, %d method(s), %d node(s)\n",
		resp.Reports, len(resp.Methods), len(resp.Nodes))
	if len(resp.Degraded) > 0 {
		fmt.Fprintf(w, "degraded: %s\n", strings.Join(resp.Degraded, ", "))
	}
	if o := resp.Overload; o != nil {
		fmt.Fprintf(w, "overload: limit=%d inflight=%d queued=%d admitted=%d\n",
			o.Limit, o.Inflight, o.Queued, o.Admitted)
		fmt.Fprintf(w, "          sheds keepalive=%d mutation=%d read=%d peer=%d (peers=%d) expired=%d\n",
			o.ShedKeepalive, o.ShedMutation, o.ShedRead, o.PeerSheds, o.Peers, o.ExpiredDrops)
	}
	methods := append([]core.FleetMethod(nil), resp.Methods...)
	sort.Slice(methods, func(i, j int) bool {
		if methods[i].MeanNs != methods[j].MeanNs {
			return methods[i].MeanNs > methods[j].MeanNs
		}
		return methods[i].Method < methods[j].Method
	})
	if len(methods) > 0 {
		fmt.Fprintf(w, "\n%-28s %10s %8s %12s\n", "METHOD", "CALLS", "ERRORS", "MEAN")
		for _, m := range methods {
			fmt.Fprintf(w, "%-28s %10d %8d %12s\n", m.Method, m.Count, m.Errors, time.Duration(m.MeanNs))
		}
	}
	nodes := append([]core.FleetNode(nil), resp.Nodes...)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Count != nodes[j].Count {
			return nodes[i].Count > nodes[j].Count
		}
		return nodes[i].Node < nodes[j].Node
	})
	if len(nodes) > 0 {
		fmt.Fprintf(w, "\n%-24s %10s %8s %9s %12s %9s\n", "NODE", "CALLS", "ERRORS", "DROPPED", "SAMPLED-OUT", "TAILKEPT")
		for _, n := range nodes {
			fmt.Fprintf(w, "%-24s %10d %8d %9d %12d %9d\n",
				n.Node, n.Count, n.Errors, n.SpansDropped, n.SampledOut, n.TailKept)
		}
	}
}

// writeAnalysis renders one extension's stored admission analysis.
func writeAnalysis(w io.Writer, rep core.AnalysisReport) {
	fmt.Fprintf(w, "extension %s v%d\n", rep.Ext, rep.Version)
	fmt.Fprintf(w, "inferred capabilities: %s\n", strings.Join(rep.Caps, ", "))
	if len(rep.HostCalls) > 0 {
		fmt.Fprintf(w, "reachable host calls:  %s\n", strings.Join(rep.HostCalls, ", "))
	}
	if len(rep.Flows) > 0 {
		fmt.Fprintf(w, "information flows:     %s\n", strings.Join(rep.Flows, ", "))
	}
	if rep.FuelBounded {
		fmt.Fprintf(w, "fuel: bounded, <= %d steps per activation\n", rep.FuelSteps)
	} else {
		fmt.Fprintln(w, "fuel: unbounded (interpreter cap applies)")
	}
	for _, warn := range rep.Warnings {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}
}

// writeStatus renders a base status report: policy set, one row per node with
// its circuit state and last reconcile outcome, and the drift totals.
func writeStatus(w io.Writer, st core.BaseStatusResp) {
	fmt.Fprintf(w, "base %s at %s\n", st.Name, st.Addr)
	fmt.Fprintf(w, "policy set: %s\n", strings.Join(st.Extensions, ", "))
	if len(st.Nodes) == 0 {
		fmt.Fprintln(w, "no nodes")
	}
	for _, n := range st.Nodes {
		fmt.Fprintf(w, "%-16s %-10s breaker=%-9s exts=[%s]\n",
			n.Addr, n.State, n.Breaker, strings.Join(n.Exts, ", "))
		fmt.Fprintf(w, "%16s last reconcile: %s\n", "", reconcileSummary(n.LastReconcile))
	}
	fmt.Fprintf(w, "drift: rounds=%d repushes=%d orphans=%d adopts=%d errors=%d\n",
		st.Drift.Rounds, st.Drift.Repushes, st.Drift.Orphans, st.Drift.Adopts, st.Drift.Errors)
}

func reconcileSummary(r core.ReconcileResult) string {
	if r.AtMillis == 0 {
		return "never"
	}
	at := time.UnixMilli(r.AtMillis).Format(time.RFC3339)
	switch {
	case r.Err != "":
		return fmt.Sprintf("%s error: %s", at, r.Err)
	case r.InSync:
		return at + " in sync"
	default:
		out := at
		if r.Promoted {
			out += " promoted"
		}
		if len(r.Repushed) > 0 {
			out += fmt.Sprintf(" repushed=%v", r.Repushed)
		}
		if len(r.Revoked) > 0 {
			out += fmt.Sprintf(" revoked=%v", r.Revoked)
		}
		if len(r.Adopted) > 0 {
			out += fmt.Sprintf(" adopted=%v", r.Adopted)
		}
		return out
	}
}
