// Fleet-scale benchmarks for the base station: adapt-round throughput,
// anti-entropy reconcile rounds, and the timer-wheel renewal scheduler, each
// against a fleet of lightweight in-process nodes. Besides the standard
// go-bench output, every run rewrites BENCH_fleet.json at the repo root so
// CI can archive the numbers (set BENCH_FLEET_OUT to redirect, or empty to
// skip).
//
//	go test -run '^$' -bench 'Fleet|RenewScheduler' -benchtime=1x .
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sign"
	"repro/internal/trace"
	"repro/internal/transport"
)

// benchFleet wires a base and n fake fleet nodes over the zero-latency
// in-process fabric, on a manual clock the benchmark drives itself.
type benchFleet struct {
	clk   *clock.Manual
	base  *core.Base
	reg   *metrics.Registry
	names []string
}

// newBenchFleet wires the fleet; observed additionally turns the node side of
// the observability plane on — RED instruments and piggyback reporting on
// every node — so the observed benchmarks price exactly what a fully
// instrumented deployment pays.
func newBenchFleet(b *testing.B, nNodes int, observed bool) *benchFleet {
	b.Helper()
	clk := clock.NewManual(time.Unix(0, 0))
	fabric := transport.NewInProc()
	names := make([]string, nNodes)
	for i := range names {
		names[i] = fmt.Sprintf("node-%05d", i)
		fn := newFleetNode(names[i], clk)
		mux := transport.NewMux()
		fn.serveOn(mux)
		var h transport.Handler = mux
		if observed {
			fn.obsReg = metrics.New()
			h = transport.REDHandling(mux, fn.obsReg)
		}
		stop, err := fabric.Serve(names[i], h)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(stop)
	}
	signer, err := sign.NewSigner("bench-base")
	if err != nil {
		b.Fatal(err)
	}
	base, err := core.NewBase(core.BaseConfig{
		Name:          "bench-base",
		Addr:          "bench-base",
		Caller:        fabric.Node("bench-base"),
		Signer:        signer,
		Clock:         clk,
		LeaseDur:      time.Minute,
		RenewFraction: 0.5,
		CallTimeout:   time.Hour,
		Shards:        16,
		RenewBatch:    64,
		RenewWorkers:  8,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(base.Close)
	reg := metrics.New()
	base.Instrument(reg)
	for _, ext := range []core.Extension{
		noopScenarioExt("policy", 1),
		noopScenarioExt("telemetry", 1),
	} {
		if err := base.AddExtension(ext); err != nil {
			b.Fatal(err)
		}
	}
	return &benchFleet{clk: clk, base: base, reg: reg, names: names}
}

func (f *benchFleet) adaptAll(b *testing.B) {
	b.Helper()
	for _, name := range f.names {
		if err := f.base.AdaptNode(name, name); err != nil {
			b.Fatalf("adapt %s: %v", name, err)
		}
	}
}

func (f *benchFleet) releaseAll() {
	for _, name := range f.names {
		f.base.Release(name)
	}
}

// fleetBenchSizes picks the fleet sizes to sweep; FLEET_BENCH_NODES pins a
// single size (CI smoke uses 10000).
func fleetBenchSizes(b *testing.B) []int {
	b.Helper()
	if v := os.Getenv("FLEET_BENCH_NODES"); v != "" {
		var n int
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil || n < 1 {
			b.Fatalf("FLEET_BENCH_NODES=%q: want a positive integer", v)
		}
		return []int{n}
	}
	return []int{1000, 10000}
}

// BenchmarkFleetAdapt measures a full adapt round: every node in the fleet
// walks into the cell and receives the policy set as one batched push, with
// its leases landing on the timer wheel.
func BenchmarkFleetAdapt(b *testing.B) {
	for _, n := range fleetBenchSizes(b) {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			f := newBenchFleet(b, n, false)
			runtime.GC() // earlier sub-benchmarks' garbage is not this bench's cost
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.adaptAll(b)
				b.StopTimer()
				f.releaseAll()
				b.StartTimer()
			}
			b.StopTimer()
			perNode := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(n)
			b.ReportMetric(perNode, "ns/node")
			writeFleetBench(b, "BenchmarkFleetAdapt", n, map[string]float64{
				"ns_per_round": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				"ns_per_node":  perNode,
			})
		})
	}
}

// BenchmarkFleetReconcile measures one anti-entropy round over a fully
// adapted, in-sync fleet: an inventory RPC per node, diffed per shard in
// parallel.
func BenchmarkFleetReconcile(b *testing.B) {
	for _, n := range fleetBenchSizes(b) {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			f := newBenchFleet(b, n, false)
			f.adaptAll(b)
			ctx := context.Background()
			runtime.GC() // earlier sub-benchmarks' garbage is not this bench's cost
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.base.ReconcileNow(ctx)
			}
			b.StopTimer()
			perNode := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(n)
			b.ReportMetric(perNode, "ns/node")
			writeFleetBench(b, "BenchmarkFleetReconcile", n, map[string]float64{
				"ns_per_round": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				"ns_per_node":  perNode,
			})
		})
	}
}

// BenchmarkRenewScheduler measures one renewal window: the timer wheel fires
// every lease in the fleet, coalesces them into per-node batches, and the
// worker pool renews them over the fabric. One op keeps 2*nodes leases
// alive. Sampling is on — the base traces the window at a 1% head rate with
// tail-keep — and the acceptance bar is that ns_per_window stays within noise
// of the pre-sampling number.
func BenchmarkRenewScheduler(b *testing.B) {
	benchRenewScheduler(b, "BenchmarkRenewScheduler", false)
}

// BenchmarkRenewSchedulerObserved is the same renewal window with the rest of
// the observability plane on top of sampling: every node serves its RPCs
// through RED histograms and piggybacks obs deltas on the batch responses,
// which the base merges into the fleet view. The delta over the unobserved
// arm prices the whole fleet-aggregation feature; EXPERIMENTS.md records it.
func BenchmarkRenewSchedulerObserved(b *testing.B) {
	benchRenewScheduler(b, "BenchmarkRenewSchedulerObserved", true)
}

func benchRenewScheduler(b *testing.B, name string, observed bool) {
	for _, n := range fleetBenchSizes(b) {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			f := newBenchFleet(b, n, observed)
			// Both arms trace with the production sampler config: sampling is
			// part of the base's steady state, not an observed-only extra.
			tr := trace.New(1)
			tr.SetSampler(trace.SamplerConfig{
				Rate: 0.01, Seed: 1, SlowThreshold: 50 * time.Millisecond,
			})
			f.base.Trace(tr)
			f.adaptAll(b)
			leases := f.base.ScheduledRenewals()
			window := 30 * time.Second // LeaseDur * RenewFraction
			runtime.GC()               // earlier sub-benchmarks' garbage is not this bench's cost
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.clk.Advance(window)
				for !f.base.RenewalsQuiesced() {
					runtime.Gosched()
				}
			}
			b.StopTimer()
			perLease := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(leases)
			b.ReportMetric(perLease, "ns/lease")
			b.ReportMetric(float64(runtime.NumGoroutine()), "goroutines")
			vals := map[string]float64{
				"ns_per_window": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				"ns_per_lease":  perLease,
				"leases":        float64(leases),
				"goroutines":    float64(runtime.NumGoroutine()),
			}
			if observed {
				vals["reports"] = float64(f.base.FleetStatus().Reports)
			}
			writeFleetBench(b, name, n, vals)
		})
	}
}

// writeFleetBench merges one benchmark's numbers into BENCH_fleet.json at
// the repo root (benchmarks run with the package directory as cwd).
// BENCH_FLEET_OUT overrides the path; setting it empty-but-present skips the
// write. Benchmarks run serially, so read-merge-write needs no locking.
func writeFleetBench(b *testing.B, name string, nodes int, vals map[string]float64) {
	b.Helper()
	path := "BENCH_fleet.json"
	if v, ok := os.LookupEnv("BENCH_FLEET_OUT"); ok {
		if v == "" {
			return
		}
		path = v
	}
	type doc struct {
		Note       string                        `json:"note"`
		Go         string                        `json:"go"`
		Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	}
	d := doc{Benchmarks: make(map[string]map[string]float64)}
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &d) // a stale or foreign file is overwritten
	}
	if d.Benchmarks == nil {
		d.Benchmarks = make(map[string]map[string]float64)
	}
	d.Note = "fleet-scale base station benchmarks; regenerate with: go test -run '^$' -bench 'Fleet|RenewScheduler' -benchtime=1x ."
	d.Go = runtime.Version()
	key := fmt.Sprintf("%s/nodes=%d", name, nodes)
	vals["nodes"] = float64(nodes)
	d.Benchmarks[key] = vals
	raw, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		b.Fatalf("marshal %s: %v", path, err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
}
