// Fleet-scale benchmarks for the base station: adapt-round throughput,
// anti-entropy reconcile rounds, and the timer-wheel renewal scheduler, each
// against a fleet of lightweight in-process nodes. Besides the standard
// go-bench output, every run rewrites BENCH_fleet.json at the repo root so
// CI can archive the numbers (set BENCH_FLEET_OUT to redirect, or empty to
// skip).
//
//	go test -run '^$' -bench 'Fleet|RenewScheduler' -benchtime=1x .
package repro

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/sign"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"
)

// benchFleet wires a base and n fake fleet nodes over the zero-latency
// in-process fabric, on a manual clock the benchmark drives itself.
type benchFleet struct {
	clk    *clock.Manual
	fabric *transport.InProc
	base   *core.Base
	reg    *metrics.Registry
	names  []string
}

// newBenchFleet wires the fleet; observed additionally turns the node side of
// the observability plane on — RED instruments and piggyback reporting on
// every node — so the observed benchmarks price exactly what a fully
// instrumented deployment pays.
func newBenchFleet(b *testing.B, nNodes int, observed bool) *benchFleet {
	b.Helper()
	clk := clock.NewManual(time.Unix(0, 0))
	fabric := transport.NewInProc()
	names := make([]string, nNodes)
	for i := range names {
		names[i] = fmt.Sprintf("node-%05d", i)
		fn := newFleetNode(names[i], clk)
		mux := transport.NewMux()
		fn.serveOn(mux)
		var h transport.Handler = mux
		if observed {
			fn.obsReg = metrics.New()
			h = transport.REDHandling(mux, fn.obsReg)
		}
		stop, err := fabric.Serve(names[i], h)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(stop)
	}
	signer, err := sign.NewSigner("bench-base")
	if err != nil {
		b.Fatal(err)
	}
	base, err := core.NewBase(core.BaseConfig{
		Name:          "bench-base",
		Addr:          "bench-base",
		Caller:        fabric.Node("bench-base"),
		Signer:        signer,
		Store:         store.NewMemory(),
		Clock:         clk,
		LeaseDur:      time.Minute,
		RenewFraction: 0.5,
		CallTimeout:   time.Hour,
		Shards:        16,
		RenewBatch:    64,
		RenewWorkers:  8,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(base.Close)
	reg := metrics.New()
	base.Instrument(reg)
	for _, ext := range []core.Extension{
		noopScenarioExt("policy", 1),
		noopScenarioExt("telemetry", 1),
	} {
		if err := base.AddExtension(ext); err != nil {
			b.Fatal(err)
		}
	}
	return &benchFleet{clk: clk, fabric: fabric, base: base, reg: reg, names: names}
}

func (f *benchFleet) adaptAll(b *testing.B) {
	b.Helper()
	for _, name := range f.names {
		if err := f.base.AdaptNode(name, name); err != nil {
			b.Fatalf("adapt %s: %v", name, err)
		}
	}
}

func (f *benchFleet) releaseAll() {
	for _, name := range f.names {
		f.base.Release(name)
	}
}

// fleetBenchSizes picks the fleet sizes to sweep; FLEET_BENCH_NODES pins a
// single size (CI smoke uses 10000).
func fleetBenchSizes(b *testing.B) []int {
	b.Helper()
	if v := os.Getenv("FLEET_BENCH_NODES"); v != "" {
		var n int
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil || n < 1 {
			b.Fatalf("FLEET_BENCH_NODES=%q: want a positive integer", v)
		}
		return []int{n}
	}
	return []int{1000, 10000}
}

// BenchmarkFleetAdapt measures a full adapt round: every node in the fleet
// walks into the cell and receives the policy set as one batched push, with
// its leases landing on the timer wheel.
func BenchmarkFleetAdapt(b *testing.B) {
	for _, n := range fleetBenchSizes(b) {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			f := newBenchFleet(b, n, false)
			runtime.GC() // earlier sub-benchmarks' garbage is not this bench's cost
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.adaptAll(b)
				b.StopTimer()
				f.releaseAll()
				b.StartTimer()
			}
			b.StopTimer()
			perNode := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(n)
			b.ReportMetric(perNode, "ns/node")
			writeFleetBench(b, "BenchmarkFleetAdapt", n, map[string]float64{
				"ns_per_round": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				"ns_per_node":  perNode,
			})
		})
	}
}

// BenchmarkFleetReconcile measures one anti-entropy round over a fully
// adapted, in-sync fleet: an inventory RPC per node, diffed per shard in
// parallel.
func BenchmarkFleetReconcile(b *testing.B) {
	for _, n := range fleetBenchSizes(b) {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			f := newBenchFleet(b, n, false)
			f.adaptAll(b)
			ctx := context.Background()
			runtime.GC() // earlier sub-benchmarks' garbage is not this bench's cost
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.base.ReconcileNow(ctx)
			}
			b.StopTimer()
			perNode := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(n)
			b.ReportMetric(perNode, "ns/node")
			writeFleetBench(b, "BenchmarkFleetReconcile", n, map[string]float64{
				"ns_per_round": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				"ns_per_node":  perNode,
			})
		})
	}
}

// BenchmarkRenewScheduler measures one renewal window: the timer wheel fires
// every lease in the fleet, coalesces them into per-node batches, and the
// worker pool renews them over the fabric. One op keeps 2*nodes leases
// alive. Sampling is on — the base traces the window at a 1% head rate with
// tail-keep — and the acceptance bar is that ns_per_window stays within noise
// of the pre-sampling number.
func BenchmarkRenewScheduler(b *testing.B) {
	benchRenewScheduler(b, "BenchmarkRenewScheduler", false)
}

// BenchmarkRenewSchedulerObserved is the same renewal window with the rest of
// the observability plane on top of sampling: every node serves its RPCs
// through RED histograms and piggybacks obs deltas on the batch responses,
// which the base merges into the fleet view. The delta over the unobserved
// arm prices the whole fleet-aggregation feature; EXPERIMENTS.md records it.
func BenchmarkRenewSchedulerObserved(b *testing.B) {
	benchRenewScheduler(b, "BenchmarkRenewSchedulerObserved", true)
}

func benchRenewScheduler(b *testing.B, name string, observed bool) {
	for _, n := range fleetBenchSizes(b) {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			f := newBenchFleet(b, n, observed)
			// Both arms trace with the production sampler config: sampling is
			// part of the base's steady state, not an observed-only extra.
			tr := trace.New(1)
			tr.SetSampler(trace.SamplerConfig{
				Rate: 0.01, Seed: 1, SlowThreshold: 50 * time.Millisecond,
			})
			f.base.Trace(tr)
			f.adaptAll(b)
			leases := f.base.ScheduledRenewals()
			window := 30 * time.Second // LeaseDur * RenewFraction
			runtime.GC()               // earlier sub-benchmarks' garbage is not this bench's cost
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.clk.Advance(window)
				for !f.base.RenewalsQuiesced() {
					runtime.Gosched()
				}
			}
			b.StopTimer()
			perLease := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(leases)
			b.ReportMetric(perLease, "ns/lease")
			b.ReportMetric(float64(runtime.NumGoroutine()), "goroutines")
			vals := map[string]float64{
				"ns_per_window": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				"ns_per_lease":  perLease,
				"leases":        float64(leases),
				"goroutines":    float64(runtime.NumGoroutine()),
			}
			if observed {
				vals["reports"] = float64(f.base.FleetStatus().Reports)
			}
			writeFleetBench(b, name, n, vals)
		})
	}
}

// BenchmarkFleetOverloadGoodput prices the overload control plane's core
// promise: keepalive goodput holds under excess read load. Each op measures
// renewal-window wall time twice — uncontended, then with an open-loop read
// flood offering 2× the rate the base-edge token buckets admit against the
// overload-fronted query surface. The bucket sheds half the offered calls
// before they touch the handler; cheap rejection is what keeps the contended
// number within ~10% of the uncontended one. goodput_ratio in
// BENCH_fleet.json records it.
func BenchmarkFleetOverloadGoodput(b *testing.B) {
	// Each load generator is its own peer: the bucket admits floodAdmitRate
	// queries/sec per peer, and the generator offers exactly twice that on a
	// fixed cadence — 2× offered load by construction, half shed in steady
	// state.
	const (
		floodWorkers     = 8
		floodAdmitRate   = 12 // bucket rate per peer, queries/sec
		floodBurst       = 2
		measurePairs     = 6 // interleaved sample pairs per op
		windowsPerSample = 3 // renewal windows timed as one sample
	)
	for _, n := range fleetBenchSizes(b) {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			f := newBenchFleet(b, n, false)
			// Real clock on the limiter and buckets: the AIMD controller and
			// the refill arithmetic see the actual delays the flood produces.
			lim := overload.NewLimiter(overload.Config{
				InitialLimit: 16, MinLimit: 4, MaxLimit: 32,
				QueueDepth: 16, Target: time.Millisecond,
				Interval: 10 * time.Millisecond, RetryAfter: 5 * time.Millisecond,
			})
			bk := overload.NewBuckets(overload.BucketConfig{
				Rate: floodAdmitRate, Burst: floodBurst,
				Methods: []string{core.MethodBaseQuery},
			})
			baseMux := transport.NewMux()
			f.base.ServeOn(baseMux)
			stop, err := f.fabric.Serve("bench-base", overload.Wrap(baseMux, lim, bk, nil))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(stop)
			f.adaptAll(b)
			leases := f.base.ScheduledRenewals()
			window := 30 * time.Second // LeaseDur * RenewFraction

			// One sample times several consecutive renewal windows, so a
			// single scheduler hiccup is small relative to the measured work.
			runSample := func() time.Duration {
				// Collect before timing so GC cycles from prior samples land
				// outside the measurement instead of randomly inside one arm.
				runtime.GC()
				start := time.Now() //lint:allow clockcheck (real goodput measurement)
				for w := 0; w < windowsPerSample; w++ {
					f.clk.Advance(window)
					for !f.base.RenewalsQuiesced() {
						runtime.Gosched()
					}
				}
				return time.Since(start) //lint:allow clockcheck (real goodput measurement)
			}
			// The flood workers run for the whole benchmark — same goroutine
			// and timer load in both arms — and an atomic gate decides whether
			// a wakeup actually issues the query. Windows are then measured in
			// interleaved uncontended/contended pairs so slow drift (CPU
			// steal, background work) cancels out of the ratio.
			var floodActive atomic.Bool
			var floodCalls, floodSheds uint64
			stopFlood := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < floodWorkers; g++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					cli := f.fabric.Node(fmt.Sprintf("load-%02d", id))
					interval := time.Second / (2 * floodAdmitRate) // 2x the admitted rate
					for {
						select {
						case <-stopFlood:
							return
						default:
						}
						if floodActive.Load() {
							err := cli.Call(context.Background(), "bench-base",
								core.MethodBaseQuery, core.QueryReq{}, &core.QueryResp{})
							atomic.AddUint64(&floodCalls, 1)
							if errors.Is(err, transport.ErrOverloaded) {
								atomic.AddUint64(&floodSheds, 1)
							}
						}
						time.Sleep(interval) //lint:allow clockcheck (paces the offered load in real time)
					}
				}(g)
			}
			defer func() {
				close(stopFlood)
				wg.Wait()
			}()

			settle := func(d time.Duration) {
				time.Sleep(d) //lint:allow clockcheck (flood gate settle, real time)
			}
			runtime.GC() // earlier sub-benchmarks' garbage is not this bench's cost
			b.ResetTimer()
			var uncontendedW, contendedW []time.Duration
			for i := 0; i < b.N; i++ {
				for w := 0; w < measurePairs; w++ {
					// Symmetric settles: both arms start after the same idle
					// stretch, so host-side frequency scaling or scheduler
					// deprioritization after an idle gap hits them equally. The
					// contended settle doubles as burst drain — long enough for
					// the flood to empty the buckets' burst allowance so the
					// measured sample sees the steady shed-half regime.
					floodActive.Store(false)
					settle(150 * time.Millisecond)
					uncontendedW = append(uncontendedW, runSample())
					floodActive.Store(true)
					settle(150 * time.Millisecond)
					contendedW = append(contendedW, runSample())
				}
			}
			b.StopTimer()
			uncontended, kept := trimmedSum(uncontendedW)
			contended, _ := trimmedSum(contendedW)
			// The goodput ratio is the median of per-pair ratios: each
			// contended sample is compared against the uncontended sample
			// measured immediately before it, so machine-level drift cancels
			// within the pair and one noisy pair cannot decide the headline.
			ratios := make([]float64, len(contendedW))
			for i := range contendedW {
				ratios[i] = float64(contendedW[i]) / float64(uncontendedW[i])
			}
			sort.Float64s(ratios)
			ratio := ratios[len(ratios)/2]
			b.ReportMetric(ratio, "x-contended")
			snap := lim.Snapshot()
			writeFleetBench(b, "BenchmarkFleetOverloadGoodput", n, map[string]float64{
				"ns_per_window_uncontended": float64(uncontended.Nanoseconds()) / float64(kept) / windowsPerSample,
				"ns_per_window_2x_load":     float64(contended.Nanoseconds()) / float64(kept) / windowsPerSample,
				"goodput_ratio":             ratio,
				"leases":                    float64(leases),
				"flood_calls":               float64(floodCalls),
				"flood_sheds":               float64(floodSheds),
				"peer_sheds":                float64(bk.Sheds()),
				"expired_drops":             float64(snap.ExpiredDrops),
				"limit_end":                 float64(snap.Limit),
			})
		})
	}
}

// trimmedSum discards the slowest and fastest eighth of the window samples
// (at least one each side) and returns the sum and count of the rest. The
// goodput arms run on whatever machine CI lands on; trimming keeps one CPU
// steal or background hiccup from deciding the ratio.
func trimmedSum(ds []time.Duration) (time.Duration, int) {
	if len(ds) < 3 {
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		return sum, len(ds)
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	trim := len(sorted) / 8
	if trim < 1 {
		trim = 1
	}
	kept := sorted[trim : len(sorted)-trim]
	var sum time.Duration
	for _, d := range kept {
		sum += d
	}
	return sum, len(kept)
}

// writeFleetBench merges one benchmark's numbers into BENCH_fleet.json at
// the repo root (benchmarks run with the package directory as cwd).
// BENCH_FLEET_OUT overrides the path; setting it empty-but-present skips the
// write. Benchmarks run serially, so read-merge-write needs no locking.
func writeFleetBench(b *testing.B, name string, nodes int, vals map[string]float64) {
	b.Helper()
	path := "BENCH_fleet.json"
	if v, ok := os.LookupEnv("BENCH_FLEET_OUT"); ok {
		if v == "" {
			return
		}
		path = v
	}
	type doc struct {
		Note       string                        `json:"note"`
		Go         string                        `json:"go"`
		Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	}
	d := doc{Benchmarks: make(map[string]map[string]float64)}
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &d) // a stale or foreign file is overwritten
	}
	if d.Benchmarks == nil {
		d.Benchmarks = make(map[string]map[string]float64)
	}
	d.Note = "fleet-scale base station benchmarks; regenerate with: go test -run '^$' -bench 'Fleet|RenewScheduler' -benchtime=1x ."
	d.Go = runtime.Version()
	key := fmt.Sprintf("%s/nodes=%d", name, nodes)
	vals["nodes"] = float64(nodes)
	d.Benchmarks[key] = vals
	raw, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		b.Fatalf("marshal %s: %v", path, err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
}
