// Crash-recovery scenarios: durable journals, anti-entropy reconciliation and
// per-node circuit breakers played out over the deterministic network
// simulator. Like the other scenario tests these run on a manual clock with a
// seeded fault stream; set SIMNET_SEED to replay a failing run exactly.
package repro

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sign"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// recoveryBaseOpts selects the robustness features a scenario base runs with.
type recoveryBaseOpts struct {
	journal        *core.BaseJournal
	breaker        *transport.BreakerSet
	reconcileEvery time.Duration
}

// newRecoveryBase mirrors newBase but wires in a state journal, a per-node
// circuit breaker and/or the periodic reconciler.
func (w *simWorld) newRecoveryBase(name string, signer *sign.Signer, o recoveryBaseOpts) *scenarioBase {
	w.t.Helper()
	var err error
	if signer == nil {
		if signer, err = sign.NewSigner(name); err != nil {
			w.t.Fatal(err)
		}
	}
	pol := transport.NewPolicy(w.seed)
	pol.Clock = w.clk
	pol.BaseDelay = 0 // retry back-to-back; scenarios drive faults, not backoff
	pol.MaxAttempts = 8
	b := &scenarioBase{name: name, reg: metrics.New(), signer: signer, pol: pol}
	pol.Instrument(b.reg)
	b.base, err = core.NewBase(core.BaseConfig{
		Name:           name,
		Addr:           name,
		Caller:         w.net.Node(name),
		Signer:         signer,
		Clock:          w.clk,
		LeaseDur:       10 * time.Second,
		RenewFraction:  0.5,
		RenewRetries:   2,
		CallTimeout:    time.Hour, // the policy and the simulated clock govern
		Policy:         pol,
		Breaker:        o.breaker,
		Journal:        o.journal,
		ReconcileEvery: o.reconcileEvery,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(b.base.Close)
	b.base.Instrument(b.reg)
	mux := transport.NewMux()
	b.base.ServeOn(mux)
	stop, err := w.net.Serve(name, mux)
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(stop)
	return b
}

// Scenario R1 — base crash and restart mid-push, recovered from the journal:
// the base loses the link right as it pushes a second extension, crashes, and
// a restarted base replays its state journal (resuming the surviving lease
// rather than re-pushing it) and reconciles the node back to the full policy
// set. For the same seed the final installed set is identical, by DeepEqual,
// to a run where the base never crashed.
func TestScenarioBaseCrashMidPushConverges(t *testing.T) {
	seed := scenarioSeed(t)

	run := func(crash bool) []core.ExtensionInfo {
		clk := clock.NewManual(time.Unix(0, 0))
		net := simnet.New(clk, seed)
		defer net.Close()
		w := &simWorld{t: t, clk: clk, net: net, seed: seed}
		dir := t.TempDir()
		j, err := core.OpenBaseJournal(dir)
		if err != nil {
			t.Fatal(err)
		}

		b1 := w.newRecoveryBase("base-1", nil, recoveryBaseOpts{journal: j})
		n := w.newNode("robot1", b1.signer)
		if err := b1.base.AddExtension(noopScenarioExt("guard", 1)); err != nil {
			t.Fatal(err)
		}
		if err := b1.base.AdaptNode("robot1", "robot1"); err != nil {
			t.Fatal(err)
		}

		if !crash {
			if err := b1.base.AddExtension(noopScenarioExt("monitor", 1)); err != nil {
				t.Fatal(err)
			}
			w.advance(25*time.Second, time.Second)
			return n.receiver.Installed()
		}

		// The link drops right as "monitor" is pushed: the push is lost, and
		// the base dies before it can retry.
		net.PartitionBoth("base-1", "robot1")
		if err := b1.base.AddExtension(noopScenarioExt("monitor", 1)); err != nil {
			t.Fatal(err)
		}
		net.Crash("base-1")
		b1.base.Close()
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		// A fresh base process on the same address replays the journal: the
		// node and its surviving "guard" lease come back without a re-push.
		net.Wipe("base-1")
		j2, err := core.OpenBaseJournal(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer j2.Close()
		b2 := w.newRecoveryBase("base-1", b1.signer, recoveryBaseOpts{journal: j2})
		if err := b2.base.AddExtension(noopScenarioExt("guard", 1)); err != nil {
			t.Fatal(err)
		}
		if err := b2.base.AddExtension(noopScenarioExt("monitor", 1)); err != nil {
			t.Fatal(err)
		}
		restored, err := b2.base.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if restored != 1 {
			t.Fatalf("restored = %d nodes, want 1", restored)
		}

		net.HealAll()
		res := b2.base.ReconcileNow(context.Background())
		r := res["robot1"]
		if len(r.Repushed) != 1 || r.Repushed[0] != "monitor" {
			t.Fatalf("repushed = %v, want [monitor] (the push the crash ate)", r.Repushed)
		}
		if len(r.Revoked) != 0 {
			t.Fatalf("revoked = %v, want none", r.Revoked)
		}
		if got := n.counter("ext.installs"); got != 2 {
			t.Fatalf("ext.installs = %d, want 2 (guard was resumed, not re-pushed)", got)
		}
		w.advance(25*time.Second, time.Second)
		return n.receiver.Installed()
	}

	want := run(false)
	got := run(true)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("crash run diverged from fault-free run:\ncrash:      %+v\nfault-free: %+v", got, want)
	}
	if len(want) != 2 {
		t.Fatalf("fault-free run installed %d extensions, want 2", len(want))
	}
}

// Scenario R2 — receiver wiped during a partition: the node loses the link,
// the base's renewals trip the circuit breaker and the node is parked as
// degraded — while the circuit is open, periodic reconcile rounds fast-fail
// locally and push nothing (no re-push storm into the partition). Meanwhile
// the node crashes and loses all state. When the link heals, the first
// inventory diff sees the empty node and re-adapts it from scratch.
func TestScenarioReceiverWipedDuringPartition(t *testing.T) {
	w := newSimWorld(t)
	breaker := transport.NewBreakerSet(w.seed, transport.BreakerConfig{
		Threshold: 3,
		Cooldown:  5 * time.Second,
		Jitter:    0.2,
		Clock:     w.clk,
	})
	b := w.newRecoveryBase("base-1", nil, recoveryBaseOpts{
		breaker:        breaker,
		reconcileEvery: 7 * time.Second,
	})
	w.newNode("robot1", b.signer)
	for _, name := range []string{"guard", "monitor"} {
		if err := b.base.AddExtension(noopScenarioExt(name, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.base.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}

	// The node walks out of range; the failed renewal cycle (initial try plus
	// two retries) trips the breaker, so the base degrades instead of
	// forgetting the node.
	w.net.PartitionBoth("base-1", "robot1")
	w.advance(10*time.Second, time.Second)
	waitFor(t, "degradation", func() bool { return len(b.base.Degraded()) == 1 })
	if got := b.counter("base.departures"); got != 0 {
		t.Fatalf("base.departures = %d, want 0 (degraded, not departed)", got)
	}

	// Mid-partition the node dies and loses everything.
	w.net.Wipe("robot1")
	n2 := w.newNode("robot1", b.signer)

	// Two more reconcile periods inside the partition: rounds run but the
	// open circuit answers locally — nothing is pushed at the dead link.
	w.advance(14*time.Second, time.Second)
	if got := b.counter("base.reconcile_repushes"); got != 0 {
		t.Fatalf("reconcile_repushes = %d while partitioned, want 0", got)
	}
	if got := n2.counter("ext.installs"); got != 0 {
		t.Fatalf("wiped node saw %d installs while partitioned, want 0", got)
	}
	if got := b.counter("transport.breaker_fastfails"); got == 0 {
		t.Fatal("no breaker fast-fails recorded while partitioned")
	}

	// The link heals: the next reconcile probe lands, the first inventory
	// diff sees the wiped node and the whole policy set is re-pushed.
	w.net.HealAll()
	w.advance(15*time.Second, time.Second)
	waitFor(t, "re-adaptation after heal", func() bool {
		return n2.receiver.Has("guard") && n2.receiver.Has("monitor")
	})
	waitFor(t, "promotion from degraded", func() bool {
		return len(b.base.Degraded()) == 0 && len(b.base.Adapted()) == 1
	})
	if got := n2.counter("ext.installs"); got != 2 {
		t.Fatalf("ext.installs = %d at the wiped node, want 2 fresh installs", got)
	}
	if got := n2.counter("ext.refreshes"); got != 0 {
		t.Fatalf("ext.refreshes = %d, want 0 (the wipe left nothing to refresh)", got)
	}
	st := b.base.Status()
	if st.Drift.Repushes != 2 {
		t.Fatalf("drift repushes = %d, want 2", st.Drift.Repushes)
	}
	// And the re-pushed leases stay alive.
	w.advance(25*time.Second, time.Second)
	if !n2.receiver.Has("guard") || !n2.receiver.Has("monitor") {
		t.Fatal("re-adapted extensions lapsed")
	}
}

// Scenario R3 — missed revoke cleaned up by reconciliation: the base retires
// an extension while the node is partitioned, so the revoke never arrives.
// After the heal, one reconcile round spots the orphan in the inventory diff
// and withdraws it — observed at the node as a withdrawal (revoke path), not
// an expiry, with the extension's shutdown procedure run exactly once.
func TestScenarioMissedRevokeReconciled(t *testing.T) {
	w := newSimWorld(t)
	b := w.newRecoveryBase("base-1", nil, recoveryBaseOpts{})
	n := w.newNode("robot1", b.signer)
	if err := b.base.AddExtension(noopScenarioExt("guard", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.base.AddExtension(trackedScenarioExt("cleanup", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.base.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}

	// The partition eats the revoke: the base retires "cleanup" from the
	// policy set, but the node still holds it under a live lease.
	w.net.PartitionBoth("base-1", "robot1")
	if err := b.base.RemoveExtension("cleanup"); err != nil {
		t.Fatal(err)
	}
	if !n.receiver.Has("cleanup") {
		t.Fatal("revoke reached the node through the partition")
	}

	w.net.HealAll()
	res := b.base.ReconcileNow(context.Background())
	r := res["robot1"]
	if len(r.Revoked) != 1 || r.Revoked[0] != "cleanup" {
		t.Fatalf("revoked = %v, want [cleanup]", r.Revoked)
	}
	if n.receiver.Has("cleanup") {
		t.Fatal("orphan survived reconciliation")
	}
	if !n.receiver.Has("guard") {
		t.Fatal("reconciliation removed a desired extension")
	}
	if got := n.counter("ext.withdrawals"); got != 1 {
		t.Fatalf("ext.withdrawals = %d, want 1 (cleaned by revoke)", got)
	}
	if got := n.counter("ext.expiries"); got != 0 {
		t.Fatalf("ext.expiries = %d, want 0 (reconciliation beat the lease timeout)", got)
	}
	if got := n.shutdowns.Load(); got != 1 {
		t.Fatalf("shutdowns = %d, want exactly 1", got)
	}
	if got := b.counter("base.reconcile_orphans"); got != 1 {
		t.Fatalf("base.reconcile_orphans = %d, want 1", got)
	}

	// The surviving lease keeps renewing; nothing ever expires.
	w.advance(25*time.Second, time.Second)
	if !n.receiver.Has("guard") {
		t.Fatal("guard lapsed after reconciliation")
	}
	if got := n.counter("ext.expiries"); got != 0 {
		t.Fatalf("ext.expiries = %d after settling, want 0", got)
	}
}
